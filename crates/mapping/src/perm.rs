//! Validated bit permutations — the software view of the AMU crossbar.
//!
//! The AMU (paper §5.2) is an `n × n` crossbar over the chunk-offset
//! bits, constrained to have exactly one closed switch per column. That
//! constraint is precisely "the configuration is a permutation", which
//! in turn is what guarantees the PA→HA mapping is invertible
//! (the paper's intra-chunk functional-correctness argument, §4).

use sdam_hbm::Geometry;

/// Errors from constructing a [`BitPermutation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermError {
    /// The permutation table was empty.
    Empty,
    /// An entry referenced a source bit outside `0..len`.
    SourceOutOfRange {
        /// Destination index with the offending entry.
        dest: usize,
        /// The out-of-range source.
        source: usize,
    },
    /// Two destinations read the same source bit — two closed switches
    /// in one crossbar column.
    DuplicateSource {
        /// The duplicated source bit.
        source: usize,
    },
}

impl std::fmt::Display for PermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermError::Empty => write!(f, "permutation table is empty"),
            PermError::SourceOutOfRange { dest, source } => write!(
                f,
                "destination bit {dest} reads source bit {source}, which is out of range"
            ),
            PermError::DuplicateSource { source } => write!(
                f,
                "source bit {source} is routed to two destinations (two closed switches in a column)"
            ),
        }
    }
}

impl std::error::Error for PermError {}

/// A permutation of the bit positions `[lo, lo + len)` of an address.
///
/// Destination bit `lo + i` of the output takes source bit
/// `lo + table[i]` of the input; bits outside the window pass through
/// unchanged. This matches the AMU, which permutes only the chunk
/// offset while the chunk number is copied verbatim.
///
/// Construction precomputes one 256-entry scatter table per input byte
/// of the window, so [`BitPermutation::apply`] is a handful of table
/// lookups and ORs (the paper's ≤21-bit AMU window needs three) instead
/// of a per-bit loop. The per-bit routing is kept as
/// [`BitPermutation::apply_reference`], the oracle the LUT path is
/// property-tested against.
///
/// # Example
///
/// ```
/// use sdam_mapping::BitPermutation;
///
/// // Swap bits 6 and 7 of an address.
/// let p = BitPermutation::new(6, vec![1, 0])?;
/// assert_eq!(p.apply(0b01_000000), 0b10_000000);
/// assert_eq!(p.invert().apply(p.apply(12345)), 12345);
/// # Ok::<(), sdam_mapping::PermError>(())
/// ```
#[derive(Clone)]
pub struct BitPermutation {
    lo: u32,
    table: Vec<u32>,
    /// `luts[k][b]` is the OR of destination-window bits driven by the
    /// window's source byte `k` holding value `b`. Derived from `table`
    /// at construction; excluded from equality/hashing/Debug.
    luts: Vec<[u64; 256]>,
}

impl std::fmt::Debug for BitPermutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitPermutation")
            .field("lo", &self.lo)
            .field("table", &self.table)
            .finish()
    }
}

impl PartialEq for BitPermutation {
    fn eq(&self, other: &Self) -> bool {
        self.lo == other.lo && self.table == other.table
    }
}

impl Eq for BitPermutation {}

impl std::hash::Hash for BitPermutation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.lo.hash(state);
        self.table.hash(state);
    }
}

impl BitPermutation {
    /// Creates a permutation of bits `[lo, lo + table.len())`, where
    /// `table[i]` is the *window-relative* source of destination bit `i`.
    ///
    /// # Errors
    ///
    /// Returns a [`PermError`] if the table is empty, references a source
    /// outside the window, or routes one source to two destinations.
    pub fn new(lo: u32, table: Vec<u32>) -> Result<Self, PermError> {
        if table.is_empty() {
            return Err(PermError::Empty);
        }
        let n = table.len();
        let mut seen = vec![false; n];
        for (dest, &src) in table.iter().enumerate() {
            let src = src as usize;
            if src >= n {
                return Err(PermError::SourceOutOfRange { dest, source: src });
            }
            if seen[src] {
                return Err(PermError::DuplicateSource { source: src });
            }
            seen[src] = true;
        }
        Ok(BitPermutation::from_table(lo, table))
    }

    /// Builds the permutation plus its byte-scatter LUTs from an
    /// already-validated table.
    fn from_table(lo: u32, table: Vec<u32>) -> Self {
        let n = table.len();
        let mut luts = vec![[0u64; 256]; n.div_ceil(8)];
        for (dest, &src) in table.iter().enumerate() {
            let byte = (src / 8) as usize;
            let bit = src % 8;
            // Every byte value with source bit `bit` set drives
            // destination bit `dest`.
            for (value, entry) in luts[byte].iter_mut().enumerate() {
                if (value >> bit) & 1 == 1 {
                    *entry |= 1u64 << dest;
                }
            }
        }
        BitPermutation { lo, table, luts }
    }

    /// The identity permutation over `[lo, lo + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn identity(lo: u32, len: usize) -> Self {
        assert!(len > 0, "permutation window must be non-empty");
        BitPermutation::from_table(lo, (0..len as u32).collect())
    }

    /// First bit of the permuted window.
    #[inline]
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Window width in bits (the crossbar dimension `n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Always false: permutations are validated non-empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Window-relative source bit for each destination bit.
    #[inline]
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// True if this is the identity routing.
    pub fn is_identity(&self) -> bool {
        self.table.iter().enumerate().all(|(i, &s)| i as u32 == s)
    }

    /// Applies the permutation to an address.
    ///
    /// This is the table-driven fast path: the window is split into
    /// bytes and each byte's precomputed scatter entry is ORed into the
    /// output. Bit-identical to [`BitPermutation::apply_reference`].
    #[inline]
    pub fn apply(&self, addr: u64) -> u64 {
        let n = self.table.len() as u32;
        let mask = ((1u64 << n) - 1) << self.lo;
        let window = (addr & mask) >> self.lo;
        let mut out = 0u64;
        for (k, lut) in self.luts.iter().enumerate() {
            out |= lut[((window >> (8 * k)) & 0xff) as usize];
        }
        (addr & !mask) | (out << self.lo)
    }

    /// Applies the permutation to a block of addresses in place.
    ///
    /// Bit-identical to calling [`BitPermutation::apply`] on each
    /// element; the window mask is hoisted out of the loop so the
    /// per-address work is the byte-scatter alone.
    pub fn apply_block(&self, addrs: &mut [u64]) {
        let n = self.table.len() as u32;
        let mask = ((1u64 << n) - 1) << self.lo;
        for a in addrs {
            let window = (*a & mask) >> self.lo;
            let mut out = 0u64;
            for (k, lut) in self.luts.iter().enumerate() {
                out |= lut[((window >> (8 * k)) & 0xff) as usize];
            }
            *a = (*a & !mask) | (out << self.lo);
        }
    }

    /// The original per-bit routing, kept as the oracle the LUT-based
    /// [`BitPermutation::apply`] is tested against.
    pub fn apply_reference(&self, addr: u64) -> u64 {
        let n = self.table.len() as u32;
        let mask = ((1u64 << n) - 1) << self.lo;
        let window = (addr & mask) >> self.lo;
        let mut out = 0u64;
        for (dest, &src) in self.table.iter().enumerate() {
            out |= ((window >> src) & 1) << dest;
        }
        (addr & !mask) | (out << self.lo)
    }

    /// Returns the inverse permutation, such that
    /// `p.invert().apply(p.apply(a)) == a` for every address.
    pub fn invert(&self) -> BitPermutation {
        let mut inv = vec![0u32; self.table.len()];
        for (dest, &src) in self.table.iter().enumerate() {
            inv[src as usize] = dest as u32;
        }
        BitPermutation::from_table(self.lo, inv)
    }

    /// The canonical representative of this permutation's
    /// *timing-equivalence class* on `geom` (see [`timing_classes`]).
    ///
    /// Two AMU permutations are timing-equivalent when no sequence of
    /// timed accesses through the device can distinguish them: the
    /// row-buffer outcome of any access pair depends only on whether
    /// the pair shares a (channel, effective-bank) pair and whether it
    /// shares a row — and those predicates are invariant under
    /// reordering destinations *within* a timing class (which channel
    /// bit, which column bit, and the bank-bit/row-bit assignment
    /// inside one fold class of the controller's bank hash are all
    /// unobservable). Canonical form: within each class, ascending
    /// sources are routed to ascending destinations.
    ///
    /// A black-box prober (`sdam-probe`) can therefore recover at most
    /// this representative; comparing `recovered` against
    /// `truth.timing_canonical(geom)` is the exact ground-truth check.
    pub fn timing_canonical(&self, geom: Geometry) -> BitPermutation {
        let classes = timing_classes(geom, self.lo, self.table.len() as u32);
        let mut table = self.table.clone();
        let mut groups: Vec<&[u32]> = vec![&classes.channel, &classes.column];
        groups.extend(classes.fold.iter().map(|v| v.as_slice()));
        for dests in groups {
            let mut sources: Vec<u32> = dests.iter().map(|&d| self.table[d as usize]).collect();
            sources.sort_unstable();
            // Destination groups are produced in ascending order, so
            // ascending source -> ascending destination within the class.
            for (&d, &s) in dests.iter().zip(sources.iter()) {
                table[d as usize] = s;
            }
        }
        BitPermutation::from_table(self.lo, table)
    }

    /// Composes two permutations over the same window:
    /// `a.compose(&b).apply(x) == b.apply(a.apply(x))`.
    ///
    /// # Panics
    ///
    /// Panics if the windows differ.
    pub fn compose(&self, then: &BitPermutation) -> BitPermutation {
        assert_eq!(self.lo, then.lo, "window mismatch");
        assert_eq!(self.table.len(), then.table.len(), "window mismatch");
        // Output bit d of `then` reads its input bit then.table[d], which
        // is output bit then.table[d] of `self`, which reads source
        // self.table[then.table[d]].
        let table = then
            .table
            .iter()
            .map(|&mid| self.table[mid as usize])
            .collect();
        BitPermutation::from_table(self.lo, table)
    }
}

/// The partition of a permutation window's *destination* bits into
/// timing-equivalence classes on a device geometry.
///
/// All indices are window-relative (destination bit `lo + i` appears as
/// `i`) and each group is ascending. The classes:
///
/// * [`TimingClasses::channel`] — destinations inside the channel
///   field. Channels are identical, independently timed machines, so
///   *which* channel bit a source drives is unobservable from latency.
/// * [`TimingClasses::column`] — destinations inside the column field.
///   Columns select a line within the open row buffer; a row hit costs
///   the same for every column, so column order is unobservable.
/// * [`TimingClasses::fold`] — one group per fold class `k` of the
///   controller's bank-address hash (`effective bank = bank XOR
///   fold(row)`, the MICRO-33 interleave): the bank-field bit `k`
///   together with every row-field bit `j` with `j ≡ k (mod
///   bank_bits)`. The effective-bank bit `k` is the *parity* of the
///   class members, so swapping destinations within a class changes no
///   (channel, effective-bank) pair and no row-equality verdict —
///   unobservable again. Empty groups (classes with no destination in
///   the window) are kept so `fold[k]` is always class `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingClasses {
    /// Window-relative destination bits in the channel field.
    pub channel: Vec<u32>,
    /// Window-relative destination bits in the column field.
    pub column: Vec<u32>,
    /// Window-relative destination bits per bank-hash fold class.
    pub fold: Vec<Vec<u32>>,
}

/// Partitions the destination bits of the window `[lo, lo + len)` into
/// timing-equivalence classes for `geom` (see [`TimingClasses`]).
///
/// Window bits below the geometry's line offset or above its address
/// width belong to no field and are ignored (they never reach the
/// device decoder).
pub fn timing_classes(geom: Geometry, lo: u32, len: u32) -> TimingClasses {
    let ch_lo = geom.line_bits();
    let col_lo = ch_lo + geom.channel_bits();
    let bank_lo = col_lo + geom.col_bits();
    let row_lo = bank_lo + geom.bank_bits();
    let bank_bits = geom.bank_bits();
    let mut classes = TimingClasses {
        channel: Vec::new(),
        column: Vec::new(),
        fold: vec![Vec::new(); bank_bits as usize],
    };
    for i in 0..len {
        let abs = lo + i;
        if abs < ch_lo || abs >= geom.addr_bits() {
            continue;
        }
        if abs < col_lo {
            classes.channel.push(i);
        } else if abs < bank_lo {
            classes.column.push(i);
        } else if abs < row_lo {
            classes.fold[(abs - bank_lo) as usize].push(i);
        } else {
            classes.fold[((abs - row_lo) % bank_bits) as usize].push(i);
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_classes_partition_hbm2() {
        let g = Geometry::hbm2_8gb();
        // Window [6, 21): channel [6,11), col [11,13), bank [13,17),
        // rows 17..21 folding onto classes 0..4.
        let c = timing_classes(g, 6, 15);
        assert_eq!(c.channel, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.column, vec![5, 6]);
        assert_eq!(c.fold.len(), 4);
        assert_eq!(c.fold[0], vec![7, 11]);
        assert_eq!(c.fold[1], vec![8, 12]);
        assert_eq!(c.fold[2], vec![9, 13]);
        assert_eq!(c.fold[3], vec![10, 14]);
        // Every window bit lands in exactly one class.
        let total = c.channel.len() + c.column.len() + c.fold.iter().map(Vec::len).sum::<usize>();
        assert_eq!(total, 15);
    }

    #[test]
    fn timing_classes_ignore_bits_outside_device_fields() {
        let g = Geometry::hbm2_8gb();
        // Window [0, 40) spills below the line offset and past addr_bits.
        let c = timing_classes(g, 0, 40);
        let total = c.channel.len() + c.column.len() + c.fold.iter().map(Vec::len).sum::<usize>();
        assert_eq!(total, (g.addr_bits() - g.line_bits()) as usize);
        assert_eq!(c.channel, vec![6, 7, 8, 9, 10]);
    }

    #[test]
    fn timing_canonical_identity_is_fixed_point() {
        let g = Geometry::hbm2_8gb();
        let p = BitPermutation::identity(6, 15);
        assert_eq!(p.timing_canonical(g), p);
    }

    #[test]
    fn timing_canonical_is_idempotent_and_class_preserving() {
        let g = Geometry::hbm2_8gb();
        let mut table: Vec<u32> = (0..15).collect();
        table.reverse();
        let p = BitPermutation::new(6, table).unwrap();
        let c = p.timing_canonical(g);
        assert_eq!(c.timing_canonical(g), c);
        // Canonicalization only reorders sources *within* a timing
        // class: the multiset of sources feeding each class is intact,
        // and within each class the canonical assignment is ascending.
        let classes = timing_classes(g, 6, 15);
        let mut groups: Vec<&[u32]> = vec![&classes.channel, &classes.column];
        groups.extend(classes.fold.iter().map(|v| v.as_slice()));
        for dests in groups {
            let mut orig: Vec<u32> = dests.iter().map(|&d| p.table()[d as usize]).collect();
            orig.sort_unstable();
            let canon: Vec<u32> = dests.iter().map(|&d| c.table()[d as usize]).collect();
            assert_eq!(orig, canon, "class {dests:?}");
        }
    }

    #[test]
    fn timing_canonical_merges_indistinguishable_permutations() {
        let g = Geometry::hbm2_8gb();
        // Swapping two channel destinations is invisible to timing.
        let mut a: Vec<u32> = (0..15).collect();
        a.swap(0, 1);
        let p = BitPermutation::new(6, a).unwrap();
        let id = BitPermutation::identity(6, 15);
        assert_eq!(p.timing_canonical(g), id.timing_canonical(g));
        // Swapping a channel destination with a column destination is
        // observable and must survive canonicalization.
        let mut b: Vec<u32> = (0..15).collect();
        b.swap(0, 5);
        let q = BitPermutation::new(6, b).unwrap();
        assert_ne!(q.timing_canonical(g), id.timing_canonical(g));
    }

    #[test]
    fn rejects_invalid_tables() {
        assert_eq!(BitPermutation::new(0, vec![]), Err(PermError::Empty));
        assert!(matches!(
            BitPermutation::new(0, vec![0, 2]),
            Err(PermError::SourceOutOfRange { dest: 1, source: 2 })
        ));
        assert!(matches!(
            BitPermutation::new(0, vec![1, 1]),
            Err(PermError::DuplicateSource { source: 1 })
        ));
    }

    #[test]
    fn identity_leaves_addresses_unchanged() {
        let p = BitPermutation::identity(6, 15);
        assert!(p.is_identity());
        for a in [0u64, 0x3f, 0xdead_beef, u64::MAX >> 8] {
            assert_eq!(p.apply(a), a);
        }
    }

    #[test]
    fn apply_block_matches_scalar_apply() {
        // A haphazard 15-bit permutation at lo=6: the block kernel must
        // agree with the scalar LUT path (itself checked against the
        // per-bit reference) on every element.
        let table: Vec<u32> = vec![3, 7, 0, 12, 1, 14, 2, 9, 4, 13, 5, 11, 6, 10, 8];
        let p = BitPermutation::new(6, table).unwrap();
        let mut addrs: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let want: Vec<u64> = addrs.iter().map(|&a| p.apply(a)).collect();
        p.apply_block(&mut addrs);
        assert_eq!(addrs, want);
    }

    #[test]
    fn apply_moves_bits_and_preserves_outside() {
        // Rotate a 3-bit window at lo=4 left by one: dest i <- src i-1.
        let p = BitPermutation::new(4, vec![2, 0, 1]).unwrap();
        let addr = 0b001_0000u64; // window = 0b001
                                  // dest0 <- src2 = 0, dest1 <- src0 = 1, dest2 <- src1 = 0.
        assert_eq!(p.apply(addr), 0b010_0000);
        // Bits outside the window untouched.
        let addr = 0b1000_0000_1111u64;
        assert_eq!(p.apply(addr) & !(0b111 << 4), addr & !(0b111 << 4));
    }

    #[test]
    fn inverse_round_trips_every_window_value() {
        let p = BitPermutation::new(6, vec![3, 1, 4, 0, 2]).unwrap();
        let inv = p.invert();
        for w in 0..(1u64 << 5) {
            let addr = (w << 6) | 0b101010;
            assert_eq!(inv.apply(p.apply(addr)), addr);
            assert_eq!(p.apply(inv.apply(addr)), addr);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = BitPermutation::new(0, vec![1, 2, 3, 0]).unwrap();
        let b = BitPermutation::new(0, vec![3, 2, 1, 0]).unwrap();
        let c = a.compose(&b);
        for x in 0..16u64 {
            assert_eq!(c.apply(x), b.apply(a.apply(x)));
        }
    }

    #[test]
    fn lut_apply_matches_reference() {
        // Cover sub-byte, multi-byte, and odd-width windows, including
        // one wider than the AMU's 21-bit maximum.
        for (lo, table) in [
            (0u32, vec![2u32, 0, 1]),
            (6, vec![14, 0, 7, 3, 12, 1, 9, 5, 13, 2, 10, 6, 11, 4, 8]),
            (6, (0..21u32).rev().collect::<Vec<u32>>()),
            (3, (0..27u32).map(|i| (i + 13) % 27).collect::<Vec<u32>>()),
        ] {
            let p = BitPermutation::new(lo, table).unwrap();
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..4096 {
                x = x.wrapping_mul(0xd129_0b22_96e8_9f25).wrapping_add(1);
                assert_eq!(p.apply(x), p.apply_reference(x), "addr {x:#x}");
            }
            assert_eq!(p.apply(0), p.apply_reference(0));
            assert_eq!(p.apply(u64::MAX), p.apply_reference(u64::MAX));
        }
    }

    #[test]
    fn permutation_is_bijection_on_window() {
        let p = BitPermutation::new(0, vec![4, 2, 0, 3, 1]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for x in 0..(1u64 << 5) {
            assert!(seen.insert(p.apply(x)), "collision at {x}");
        }
        assert_eq!(seen.len(), 32);
    }
}
