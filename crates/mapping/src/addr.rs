//! Address and identifier newtypes.

/// A physical address: the output of VA→PA translation and the input of
/// PA→HA mapping.
///
/// Keeping [`PhysAddr`] distinct from [`sdam_hbm::HardwareAddr`] makes it
/// a type error to hand an unmapped physical address to the memory
/// device — the bug class SDAM's correctness argument (paper §4) is
/// about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Returns the raw 64-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The chunk number: the address bits above `chunk_bits`.
    ///
    /// ```
    /// use sdam_mapping::PhysAddr;
    /// // 2 MB chunks => 21 offset bits.
    /// assert_eq!(PhysAddr(0x40_0000).chunk_number(21), 2);
    /// ```
    #[inline]
    pub fn chunk_number(self, chunk_bits: u32) -> u64 {
        self.0 >> chunk_bits
    }

    /// The offset within the chunk: the low `chunk_bits` bits.
    #[inline]
    pub fn chunk_offset(self, chunk_bits: u32) -> u64 {
        self.0 & ((1u64 << chunk_bits) - 1)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// An address-mapping identifier, as returned by the paper's
/// `add_addr_map()` API and stored per chunk in the [`crate::Cmt`].
///
/// The CMT's first-level table stores one byte per chunk, so the system
/// supports up to 256 concurrent mappings (paper §4: "Our system
/// supports up to 256 access patterns, which is confirmed to be
/// sufficient").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MappingId(pub u8);

impl MappingId {
    /// The identity (boot-time default) mapping, always id 0.
    pub const DEFAULT: MappingId = MappingId(0);

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for MappingId {
    fn from(v: u8) -> Self {
        MappingId(v)
    }
}

impl std::fmt::Display for MappingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_split_round_trips() {
        let chunk_bits = 21; // 2 MB
        for raw in [0u64, 1, 0x1f_ffff, 0x20_0000, 0xdead_beef] {
            let pa = PhysAddr(raw);
            let rebuilt = (pa.chunk_number(chunk_bits) << chunk_bits) | pa.chunk_offset(chunk_bits);
            assert_eq!(rebuilt, raw);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhysAddr(0x10).to_string(), "PA:0x10");
        assert_eq!(MappingId(3).to_string(), "map#3");
        assert_eq!(format!("{:x}", PhysAddr(255)), "ff");
    }

    #[test]
    fn default_mapping_id_is_zero() {
        assert_eq!(MappingId::DEFAULT.index(), 0);
        assert_eq!(MappingId::default(), MappingId::DEFAULT);
    }
}
