//! Figure 14 (and the core-count study of §7.4): SDAM's speedup grows
//! when memory is relatively slower (HBM down-clocked to 1/2 and 1/4)
//! and when more cores contend (1 → 4 cores).

use sdam::{pipeline, report, Experiment, SystemConfig};
use sdam_bench::{exit_on_err, f2, header, row, scale_from_args};
use sdam_hbm::Timing;
use sdam_sys::MachineConfig;
use sdam_workloads::{data_intensive_suite, Workload};

fn geomean_for(exp: &Experiment, suite: &[Box<dyn Workload>], config: SystemConfig) -> f64 {
    let comparisons: Vec<report::Comparison> = suite
        .iter()
        .map(|w| exit_on_err(pipeline::try_compare(w.as_ref(), &[config], exp)))
        .collect();
    report::geomean_speedup(&comparisons, config).expect("config ran")
}

fn main() {
    let mut base = Experiment::bench();
    // Default to `small`: at `tiny` the kernels are cache-resident.
    base.scale = if std::env::args().len() > 1 {
        scale_from_args()
    } else {
        sdam_workloads::Scale::small()
    };
    let config = SystemConfig::SdmBsmMl { clusters: 32 };
    // A subset keeps the sweep fast while covering both graph and
    // analytics behaviour.
    let suite: Vec<Box<dyn Workload>> = data_intensive_suite()
        .into_iter()
        .filter(|w| ["bfs", "pagerank", "hash-join", "kmeans"].contains(&w.name()))
        .collect();

    header("Fig. 14: speedup of SDM+BSM+ML(32) vs HBM frequency");
    row(&["HBM freq".into(), "speedup".into()]);
    let full = {
        let exp = base.clone();
        geomean_for(&exp, &suite, config)
    };
    for (label, scale) in [("1/1", 1u64), ("1/2", 2), ("1/4", 4)] {
        let mut exp = base.clone();
        exp.timing = Timing::hbm2().scaled(scale);
        let s = geomean_for(&exp, &suite, config);
        row(&[
            label.into(),
            format!("{} ({:+.0}%)", f2(s), (s / full - 1.0) * 100.0),
        ]);
    }
    println!("paper: +19% speedup at 1/4 frequency");

    header("Core-count study: speedup vs number of cores");
    row(&["cores".into(), "speedup".into()]);
    for cores in [1usize, 2, 4] {
        let mut exp = base.clone();
        exp.machine = MachineConfig::cpu_with_cores(cores);
        row(&[cores.to_string(), f2(geomean_for(&exp, &suite, config))]);
    }
    println!("paper: 1.27x at 1 core -> 1.32x at 4 cores");
}
