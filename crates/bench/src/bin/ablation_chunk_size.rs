//! Ablation: the chunk-size trade-off (paper §4).
//!
//! Larger chunks shrink the CMT but can only be tracked coarsely and
//! strand more memory per mapping (internal fragmentation); smaller
//! chunks do the reverse and leave fewer offset bits for the AMU to
//! shuffle. The paper picks 2 MB; this sweep shows why.

use sdam::{pipeline, Experiment, SystemConfig};
use sdam_bench::{exit_on_err, f2, header, scale_from_args};
use sdam_mapping::Cmt;
use sdam_workloads::datacopy::DataCopy;

fn main() {
    let scale = scale_from_args();
    header("Ablation: chunk size (paper picks 2 MB = 21 bits)");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12}",
        "chunk", "CMT KB", "frag pages*", "offset bits", "SDAM speedup"
    );
    let w = DataCopy::new(vec![1, 32]);
    for chunk_bits in [16u32, 18, 21, 23, 25] {
        let cmt = Cmt::new(33, chunk_bits);
        let mut exp = Experiment::quick();
        exp.scale = scale;
        exp.chunk_bits = chunk_bits;
        let cmp = exit_on_err(pipeline::try_compare(
            &w,
            &[SystemConfig::SdmBsmMl { clusters: 4 }],
            &exp,
        ));
        let speedup = cmp
            .speedup_of(SystemConfig::SdmBsmMl { clusters: 4 })
            .expect("config ran");
        // Worst-case stranded pages for the paper's 256 mappings.
        let frag = 256u64 * ((1u64 << (chunk_bits - 12)) - 1);
        println!(
            "{:<10} {:>10.1} {:>12} {:>14} {:>12}",
            format!("{} KB", (1u64 << chunk_bits) >> 10),
            cmt.storage_bits_two_level() as f64 / 8.0 / 1000.0,
            frag,
            chunk_bits - 6,
            f2(speedup),
        );
    }
    println!(
        "* worst-case internal fragmentation at 256 concurrent mappings\n\
         paper: 2 MB balances CMT storage (68 KB) against a 6.25 % worst-case\n\
         fragmentation bound; tiny chunks can no longer cover large strides\n\
         inside one chunk, huge chunks bloat fragmentation"
    );
}
