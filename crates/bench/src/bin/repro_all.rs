//! Runs every figure/table regeneration binary in sequence — the
//! one-command reproduction of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p sdam-bench --bin repro_all [tiny|small|large]
//! ```
//!
//! Each experiment is invoked in-process via `cargo run` so its output
//! appears exactly as when run individually; a failure stops the run
//! with the failing binary named.

use std::process::Command;

const BINARIES: &[&str] = &[
    "background_ddr_vs_hbm",
    "background_clp_vs_blp",
    "fig01_clp_vs_rlp",
    "fig02_conflict_demo",
    "fig03_stride_throughput",
    "fig04_single_vs_multi",
    "table1_variable_stats",
    "table2_hyperparams",
    "table3_area",
    "table4_loc",
    "fig11_mixed_stride",
    "fig12_cpu_speedup",
    "fig13_profiling_time",
    "fig14_freq_scaling",
    "fig15_accelerator",
    "ablation_chunk_size",
    "ablation_controller",
    "ablation_selection",
    "ablation_hashing",
    "ablation_optimality",
    "extension_hmc",
    "extension_corun",
    "extension_future_clp",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let started = std::time::Instant::now();
    for bin in BINARIES {
        println!("\n───────────────────────── {bin} ─────────────────────────");
        // Prefer the sibling binary next to this executable; fall back
        // to cargo for partial builds.
        let sibling = std::env::current_exe()
            .expect("self path exists")
            .with_file_name(bin);
        let status = if sibling.exists() {
            Command::new(sibling).args(&args).status()
        } else {
            Command::new("cargo")
                .args(["run", "--release", "-q", "-p", "sdam-bench", "--bin", bin])
                .args(if args.is_empty() {
                    vec![]
                } else {
                    vec!["--".to_string()]
                })
                .args(&args)
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "\nall {} experiments regenerated in {:.1} s",
        BINARIES.len(),
        started.elapsed().as_secs_f64()
    );
}
