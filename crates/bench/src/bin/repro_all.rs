//! Runs every figure/table regeneration binary — the one-command
//! reproduction of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p sdam-bench --bin repro_all [tiny|small|large] [-j N]
//! ```
//!
//! The experiments are independent processes, so they fan out across
//! `-j N` concurrent children (default: the host's available
//! parallelism). Output is buffered per experiment and printed in the
//! canonical order, so the transcript is identical to a serial run; a
//! failure stops the run with the failing binary named. `-j 1` streams
//! each child's output live instead of buffering.

use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const BINARIES: &[&str] = &[
    "background_ddr_vs_hbm",
    "background_clp_vs_blp",
    "fig01_clp_vs_rlp",
    "fig02_conflict_demo",
    "fig03_stride_throughput",
    "fig04_single_vs_multi",
    "table1_variable_stats",
    "table2_hyperparams",
    "table3_area",
    "table4_loc",
    "fig11_mixed_stride",
    "fig12_cpu_speedup",
    "fig13_profiling_time",
    "fig14_freq_scaling",
    "fig15_accelerator",
    "ablation_chunk_size",
    "ablation_controller",
    "ablation_selection",
    "ablation_hashing",
    "ablation_optimality",
    "extension_hmc",
    "extension_corun",
    "extension_future_clp",
];

/// Builds the command for one experiment binary: prefer the sibling
/// binary next to this executable; fall back to cargo for partial
/// builds.
fn command_for(bin: &str, args: &[String]) -> Command {
    let sibling = std::env::current_exe()
        .expect("self path exists")
        .with_file_name(bin);
    if sibling.exists() {
        let mut c = Command::new(sibling);
        c.args(args);
        c
    } else {
        let mut c = Command::new("cargo");
        c.args(["run", "--release", "-q", "-p", "sdam-bench", "--bin", bin]);
        if !args.is_empty() {
            c.arg("--");
            c.args(args);
        }
        c
    }
}

fn banner(bin: &str) -> String {
    format!("\n───────────────────────── {bin} ─────────────────────────")
}

fn main() {
    let mut jobs: Option<usize> = None;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "-j" || a == "--jobs" {
            let n = raw.next().unwrap_or_else(|| {
                eprintln!("{a} needs a count");
                std::process::exit(2);
            });
            jobs = Some(n.parse().unwrap_or_else(|_| {
                eprintln!("bad job count: {n}");
                std::process::exit(2);
            }));
        } else if let Some(n) = a.strip_prefix("-j") {
            jobs = Some(n.parse().unwrap_or_else(|_| {
                eprintln!("bad job count: {n}");
                std::process::exit(2);
            }));
        } else {
            args.push(a);
        }
    }
    let jobs = jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);

    let started = std::time::Instant::now();
    if jobs == 1 {
        // Serial: stream child output live, exactly as when run by hand.
        for bin in BINARIES {
            println!("{}", banner(bin));
            match command_for(bin, &args).status() {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("{bin} exited with {s}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("failed to launch {bin}: {e}");
                    std::process::exit(1);
                }
            }
        }
    } else {
        run_parallel(jobs, &args);
    }
    println!(
        "\nall {} experiments regenerated in {:.1} s ({jobs} jobs)",
        BINARIES.len(),
        started.elapsed().as_secs_f64()
    );
}

/// Runs up to `jobs` experiment children concurrently, buffering each
/// child's output and printing the buffers in canonical order.
fn run_parallel(jobs: usize, args: &[String]) {
    type Slot = Option<Result<std::process::Output, String>>;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Slot>> = BINARIES.iter().map(|_| Mutex::new(None)).collect();
    let failed = std::thread::scope(|s| {
        for _ in 0..jobs.min(BINARIES.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= BINARIES.len() {
                    break;
                }
                let out = command_for(BINARIES[i], args)
                    .output()
                    .map_err(|e| e.to_string());
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
        // Print completed experiments in order while workers run.
        let mut failed = false;
        for (i, bin) in BINARIES.iter().enumerate() {
            let out = loop {
                if let Some(out) = slots[i].lock().expect("slot lock").take() {
                    break out;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            };
            println!("{}", banner(bin));
            match out {
                Ok(o) => {
                    print!("{}", String::from_utf8_lossy(&o.stdout));
                    eprint!("{}", String::from_utf8_lossy(&o.stderr));
                    if !o.status.success() {
                        eprintln!("{bin} exited with {}", o.status);
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("failed to launch {bin}: {e}");
                    failed = true;
                }
            }
        }
        failed
    });
    if failed {
        std::process::exit(1);
    }
}
