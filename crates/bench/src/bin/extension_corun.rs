//! Extension: co-running applications sharing one memory system.
//!
//! The paper's Observation 2 and Fig. 4 argue with synthetic stride
//! mixes that a single global mapping cannot serve concurrent access
//! patterns; this bin makes the argument at full-system level — two
//! *processes* co-resident in one `SdamSystem` (shared chunks, shared
//! CMT), with the machine hosting both workloads' cores.

use sdam::stage::StageCache;
use sdam::{pipeline, Experiment, SystemConfig};
use sdam_bench::{exit_on_err, f2, header, row, scale_from_args};
use sdam_workloads::datacopy::DataCopy;
use sdam_workloads::Workload;

fn main() {
    let mut exp = Experiment::quick();
    exp.scale = scale_from_args();

    header("Extension: co-running tenants (shared memory, shared CMT)");
    type TenantPair = (&'static str, Box<dyn Workload>, Box<dyn Workload>);
    let pairs: Vec<TenantPair> = vec![
        (
            "stream + stride-32",
            Box::new(DataCopy::with_threads(vec![1], 1)),
            Box::new(DataCopy::with_threads(vec![32], 1)),
        ),
        (
            "stride-8 + stride-16",
            Box::new(DataCopy::with_threads(vec![8], 1)),
            Box::new(DataCopy::with_threads(vec![16], 1)),
        ),
        (
            "stream + stream",
            Box::new(DataCopy::with_threads(vec![1], 1)),
            Box::new(DataCopy::with_threads(vec![1], 1)),
        ),
    ];
    let configs = [
        SystemConfig::BsDm,
        SystemConfig::BsBsm,
        SystemConfig::BsHm,
        SystemConfig::SdmBsmMl { clusters: 4 },
    ];
    let mut head = vec!["tenants".to_string()];
    head.extend(configs.iter().skip(1).map(|c| c.to_string()));
    row(&head);
    for (name, a, b) in pairs {
        // One artifact cache per pair: the four configurations share the
        // two per-tenant profiling passes.
        let cache = StageCache::new();
        let base = exit_on_err(pipeline::try_run_corun_with_cache(
            &[a.as_ref(), b.as_ref()],
            SystemConfig::BsDm,
            &exp,
            &cache,
        ))
        .report
        .cycles as f64;
        let mut cells = vec![name.to_string()];
        for &config in &configs[1..] {
            let r = exit_on_err(pipeline::try_run_corun_with_cache(
                &[a.as_ref(), b.as_ref()],
                config,
                &exp,
                &cache,
            ));
            cells.push(f2(base / r.report.cycles as f64));
        }
        row(&cells);
    }
    println!(
        "speedups over BS+DM. One global shuffle must compromise between\n\
         tenants; per-variable SDAM serves each tenant's pattern — and on\n\
         the all-streaming pair there is nothing to win, as expected"
    );
}
