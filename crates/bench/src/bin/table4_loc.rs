//! Table 4: lines of code changed per feature.
//!
//! The paper counts lines *changed* in Linux/glibc (they modify existing
//! allocators); we built the allocators as a standalone library, so our
//! counts are whole-module sizes. The comparison still communicates the
//! paper's point: the software footprint of SDAM is small and isolated
//! to the allocation paths.

use sdam_bench::header;

fn loc(path: &str) -> usize {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    match std::fs::read_to_string(format!("{root}/{path}")) {
        Ok(s) => s
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count(),
        Err(_) => 0,
    }
}

fn main() {
    header("Table 4: lines of code per feature (ours vs paper's diff size)");
    let rows = [
        ("VM allocator", vec!["crates/mem/src/heap.rs"], 131),
        (
            "PM allocator",
            vec!["crates/mem/src/phys.rs", "crates/mem/src/buddy.rs"],
            97,
        ),
        ("Driver (CMT I/O)", vec!["crates/mapping/src/cmt.rs"], 98),
        ("Miscellaneous", vec!["crates/mem/src/vma.rs"], 33),
    ];
    println!(
        "{:<18} {:>12} {:>14}",
        "feature", "ours (LoC)", "paper (diff)"
    );
    for (name, paths, paper) in rows {
        let total: usize = paths.iter().map(|p| loc(p)).sum();
        println!("{name:<18} {total:>12} {paper:>14}");
    }
    println!(
        "\nOur numbers are full standalone modules (with tests filtered as \
         code); the paper's are kernel/glibc diffs against existing \
         allocators."
    );
}
