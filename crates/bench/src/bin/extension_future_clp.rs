//! Extension: future-generation 3D memory with more channels.
//!
//! Paper §1: "Such CLP is expected to grow more for future-generation
//! 3D memory devices" (citing fine-grained DRAM). This bin scales the
//! device from 16 to 64 channels and measures how the gap between the
//! boot-time mapping and SDAM widens: more channels means more
//! parallelism for a bad mapping to waste.

use sdam::{pipeline, Experiment, SystemConfig};
use sdam_bench::{exit_on_err, f2, header, row, scale_from_args};
use sdam_hbm::Geometry;
use sdam_workloads::datacopy::DataCopy;

fn main() {
    let mut base = Experiment::quick();
    base.scale = scale_from_args();
    header("Extension: SDAM benefit vs channel count (future CLP growth)");
    row(&[
        "channels".into(),
        "SDM+BSM+ML(4)".into(),
        "hostile stride".into(),
    ]);
    // Keep capacity at 8 GB; trade row bits for channel bits.
    for (ch_bits, row_bits) in [(4u32, 17u32), (5, 16), (6, 15)] {
        let geom = Geometry::new(2, ch_bits, 4, row_bits).expect("valid geometry");
        let channels = geom.num_channels() as u64;
        // The hostile stride pins one channel on THIS device: stride ==
        // channel count.
        let w = DataCopy::new(vec![channels]);
        let mut exp = base.clone();
        exp.geometry = geom;
        let cmp = exit_on_err(pipeline::try_compare(
            &w,
            &[SystemConfig::SdmBsmMl { clusters: 4 }],
            &exp,
        ));
        row(&[
            channels.to_string(),
            f2(cmp
                .speedup_of(SystemConfig::SdmBsmMl { clusters: 4 })
                .expect("config ran")),
            format!("{channels} lines"),
        ]);
    }
    println!(
        "the more channels the device has, the more a fixed mapping can\n\
         waste and the more software-defined mapping recovers — the\n\
         paper's closing argument for future devices"
    );
}
