//! Ablation: mapping-selection ranking — the paper's literal
//! "highest flip rate → channel" rule vs our ratio-banded refinement
//! (DESIGN.md §7, EXPERIMENTS.md).
//!
//! The comparison runs on the exact case that motivated the refinement:
//! the per-variable profiles of the SSSP workload, whose dominant
//! variable mixes lane-interleaved streaming with Zipf-skewed hub
//! gathers. On clean strides both rules agree; on the skewed profile
//! the literal rule routes only high bits to the channel field and
//! concentrates the hot low-address head onto one channel.

use std::collections::HashMap;

use sdam::{profiling, Experiment};
use sdam_bench::{exit_on_err, f2, header, row, scale_from_args};
use sdam_hbm::Geometry;
use sdam_mapping::{
    select, AddressMapping, BitFlipRateVector, BitPermutation, BitShuffleMapping, PhysAddr,
};
use sdam_workloads::graph::Sssp;

/// The paper's literal rule: channel ← strictly highest flip rates.
fn literal_selection(bfrv: &BitFlipRateVector, geom: Geometry) -> BitShuffleMapping {
    let lo = geom.line_bits();
    let hi = geom.addr_bits();
    let n = (hi - lo) as usize;
    let mut dests: Vec<u32> = Vec::with_capacity(n);
    let ch_hi = lo + geom.channel_bits();
    let col_hi = ch_hi + geom.col_bits();
    let bank_hi = col_hi + geom.bank_bits();
    dests.extend(lo..ch_hi);
    dests.extend(ch_hi..col_hi);
    dests.extend(col_hi..bank_hi);
    dests.extend(bank_hi..hi);
    let sources = bfrv.bits_by_flip_rate(lo);
    let mut table = vec![0u32; n];
    for (d, s) in dests.into_iter().zip(sources) {
        table[(d - lo) as usize] = s - lo;
    }
    BitShuffleMapping::new(BitPermutation::new(lo, table).expect("valid"))
}

/// Max fraction of accesses landing on one channel (1/32 ≈ 0.03 is a
/// perfect spread).
fn concentration(m: &dyn AddressMapping, geom: Geometry, addrs: &[u64]) -> f64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &a in addrs {
        *counts
            .entry(geom.decode(m.map(PhysAddr(a))).channel)
            .or_insert(0) += 1;
    }
    *counts.values().max().unwrap_or(&0) as f64 / addrs.len() as f64
}

fn main() {
    let geom = Geometry::hbm2_8gb();
    let mut exp = Experiment::bench();
    exp.scale = if std::env::args().len() > 1 {
        scale_from_args()
    } else {
        sdam_workloads::Scale::small()
    };

    header("Ablation: literal flip-rate ranking vs ratio-banded ranking");
    row(&[
        "profile".into(),
        "refs".into(),
        "literal max-ch".into(),
        "banded max-ch".into(),
    ]);

    // Clean stride control: the rules must agree.
    let stride: Vec<u64> = (0..8192u64).map(|i| i * 16 * 64).collect();
    let bfrv = BitFlipRateVector::from_addrs(stride.iter().copied(), geom.addr_bits());
    row(&[
        "stride-16".into(),
        stride.len().to_string(),
        f2(concentration(
            &literal_selection(&bfrv, geom),
            geom,
            &stride,
        )),
        f2(concentration(
            &select::shuffle_for_bfrv(&bfrv, geom),
            geom,
            &stride,
        )),
    ]);

    // Hot-head + pointer-jump traffic: 80 % of accesses hit a 4 KB head
    // (think hub vertices), interleaved with far jumps. The far jumps
    // flip high bits slightly more often than the head walk flips low
    // bits, so the literal rule routes high bits to the channel field —
    // bits that are CONSTANT inside the head — and pins 80 % of traffic
    // to one channel. Banding treats the near-tie as a tie and keeps
    // low bits, spreading the head.
    let hot_head: Vec<u64> = (0..8192u64)
        .map(|i| {
            if i % 5 == 4 {
                ((1 << 20) + (i % 97) * 4096 * 33) & ((1 << 27) - 1)
            } else {
                (i % 64) * 64 // within the 4 KB head
            }
        })
        .collect();
    let bfrv = BitFlipRateVector::from_addrs(hot_head.iter().copied(), geom.addr_bits());
    row(&[
        "hot-head".into(),
        hot_head.len().to_string(),
        f2(concentration(
            &literal_selection(&bfrv, geom),
            geom,
            &hot_head,
        )),
        f2(concentration(
            &select::shuffle_for_bfrv(&bfrv, geom),
            geom,
            &hot_head,
        )),
    ]);

    // The motivating case: SSSP's per-variable profiles, as measured by
    // the paper's own two-pass profiling.
    let data = exit_on_err(profiling::try_profile_on_baseline(&Sssp, &exp));
    for v in &data.major {
        let addrs = &data.pa_streams[v];
        if addrs.len() < 1000 {
            continue;
        }
        let bfrv = &data.bfrvs[v];
        row(&[
            format!("sssp {v}"),
            addrs.len().to_string(),
            f2(concentration(&literal_selection(bfrv, geom), geom, addrs)),
            f2(concentration(
                &select::shuffle_for_bfrv(bfrv, geom),
                geom,
                addrs,
            )),
        ]);
    }
    println!(
        "banding never disagrees on clean stride signals (distinct rate\n\
         bands) and breaks near-ties toward low bits, which spreads hot\n\
         heads that strict ranking can pin to one channel"
    );
}
