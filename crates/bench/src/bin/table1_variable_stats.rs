//! Table 1: variable-level statistics of the 19 standard benchmarks.
//!
//! For each surrogate we profile its trace and report the measured
//! number of variables, major variables (80 % of references), and major
//! footprints, next to the paper's printed values. Footprints are in
//! the surrogate's scaled units (1 paper-MB ≙ 4 KB; see
//! `sdam_workloads::suites`).

use sdam_bench::{header, scale_from_args};
use sdam_trace::profile;
use sdam_workloads::suites::{table1, Surrogate};
use sdam_workloads::Workload;

fn main() {
    let scale = scale_from_args();
    header("Table 1: variable-level statistics (measured vs paper)");
    println!(
        "{:<14} {:>8} {:>8} | {:>8} {:>8} | {:>12} {:>12}",
        "benchmark", "#var(p)", "#var(m)", "major(p)", "major(m)", "avgKB(m)", "minKB(m)"
    );
    for spec in table1() {
        let surrogate = Surrogate::new(spec.clone());
        let trace = surrogate.generate(scale);
        let s = profile::summarize(&trace);
        println!(
            "{:<14} {:>8} {:>8} | {:>8} {:>8} | {:>12.1} {:>12.1}",
            spec.name,
            spec.num_variables,
            s.num_variables,
            spec.num_major,
            s.num_major,
            s.avg_major_footprint as f64 / 1024.0,
            s.min_major_footprint as f64 / 1024.0,
        );
    }
    println!(
        "\n(p) = paper's Table 1, (m) = measured on the surrogate trace.\n\
         Measured #var is capped: the surrogate models at most 16 tail \
         variables — the mechanism only needs the major set."
    );
}
