//! Figure 3: (a) HBM throughput vs stride under the default mapping;
//! (b) the bit-flip-rate distribution for each stride.
//!
//! Paper: throughput drops ~20x from stride 1 to 16; the flip-rate peak
//! moves toward higher bits as the stride grows, so the optimal channel
//! bits move with it.

use sdam_bench::{gbps, header, row};
use sdam_hbm::{Geometry, HardwareAddr, Hbm, Timing};
use sdam_mapping::BitFlipRateVector;

fn main() {
    let geom = Geometry::hbm2_8gb();
    let n = 65_536u64;

    header("Fig. 3(a): throughput vs stride, default mapping");
    row(&[
        "stride".into(),
        "GB/s".into(),
        "chans".into(),
        "vs stride-1".into(),
    ]);
    let mut t1 = 0.0;
    for stride in [1u64, 2, 4, 8, 16, 32] {
        let mut hbm = Hbm::new(geom, Timing::hbm2());
        let stats = hbm.run_open_loop((0..n).map(|i| geom.decode(HardwareAddr(i * stride * 64))));
        let t = stats.throughput_gbps();
        if stride == 1 {
            t1 = t;
        }
        row(&[
            stride.to_string(),
            gbps(t),
            stats.channels_touched().to_string(),
            format!("1/{:.1}", t1 / t),
        ]);
    }
    println!("paper: ~20x drop by stride 16; stride 32 uses a single channel");

    header("Fig. 3(b): bit-flip rate per hardware-address bit");
    let bits: Vec<u32> = (6..16).collect();
    let mut head = vec!["stride".to_string()];
    head.extend(bits.iter().map(|b| format!("b{b}")));
    row(&head);
    for stride in [1u64, 2, 4, 8, 16] {
        let bfrv =
            BitFlipRateVector::from_addrs((0..4096u64).map(|i| i * stride * 64), geom.addr_bits());
        let mut cells = vec![stride.to_string()];
        cells.extend(bits.iter().map(|&b| format!("{:.2}", bfrv.rate(b))));
        row(&cells);
    }
    println!("paper: the flip-rate peak shifts to higher bits with stride");
}
