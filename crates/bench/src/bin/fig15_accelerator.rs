//! Figure 15: near-memory accelerator speedups over BS+DM on the
//! data-intensive benchmarks.
//!
//! The accelerator machine model differs from the CPU in exactly the two
//! ways the paper names (§7.4): far more concurrent outstanding requests
//! and a much smaller cache — so it gains more from SDAM (paper: 2.58x
//! for SDM+BSM+DL).

use sdam::stage::StageCache;
use sdam::{pipeline, report, Experiment, SystemConfig};
use sdam_bench::{
    exit_on_err, f2, header, merged_comparison_metrics, scale_from_args, write_metrics_sidecar,
};
use sdam_sys::MachineConfig;
use sdam_workloads::data_intensive_suite;

fn main() {
    let mut exp = Experiment::bench();
    // Default to `small`: at `tiny` the kernels are cache-resident and
    // the memory mapping cannot matter.
    exp.scale = if std::env::args().len() > 1 {
        scale_from_args()
    } else {
        sdam_workloads::Scale::small()
    };
    exp.machine = MachineConfig::accelerator();

    let configs = [
        SystemConfig::BsBsm,
        SystemConfig::BsHm,
        SystemConfig::SdmBsm,
        SystemConfig::SdmBsmMl { clusters: 32 },
        SystemConfig::SdmBsmDl { clusters: 32 },
    ];

    header("Fig. 15: accelerator speedup over BS+DM");
    print!("{:<14}", "benchmark");
    for c in &configs {
        print!(" {:>15}", c.to_string());
    }
    println!();

    // One cache across the whole suite: each benchmark is profiled
    // once and every configuration reuses it.
    let cache = StageCache::new();
    let mut comparisons = Vec::new();
    for w in data_intensive_suite() {
        let cmp = exit_on_err(pipeline::try_compare_with_cache(
            w.as_ref(),
            &configs,
            &exp,
            &cache,
        ));
        print!("{:<14}", cmp.workload);
        for &c in &configs {
            print!(" {:>15}", f2(cmp.speedup_of(c).expect("config ran")));
        }
        println!();
        comparisons.push(cmp);
    }
    print!("{:<14}", "geomean");
    for &c in &configs {
        print!(
            " {:>15}",
            f2(report::geomean_speedup(&comparisons, c).expect("all ran"))
        );
    }
    println!();
    write_metrics_sidecar(
        "fig15_accelerator",
        &merged_comparison_metrics(&comparisons),
    );
    println!("\npaper: SDM+BSM+DL reaches 2.58x on the accelerator (vs 1.84x on CPU)");
}
