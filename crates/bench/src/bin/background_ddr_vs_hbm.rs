//! Background (paper §2.1): DDR vs 3D memory organization.
//!
//! "3D memory offers 8x more CLP than DDR memory but with 8x smaller
//! rows" — and therefore wins on parallel streams while DDR's big row
//! buffers shine on single-stream locality. This bin puts numbers on
//! the organizational comparison the paper's motivation rests on.

use sdam_bench::{gbps, header, row};
use sdam_hbm::{Geometry, HardwareAddr, Hbm, Timing};

fn run(geom: Geometry, timing: Timing, addrs: Vec<sdam_hbm::DecodedAddr>) -> f64 {
    let mut dev = Hbm::new(geom, timing);
    dev.run_open_loop(addrs).throughput_gbps()
}

fn main() {
    let hbm = Geometry::hbm2_8gb();
    let ddr = Geometry::ddr4_8gb();
    header("Background §2.1: organization");
    println!(
        "HBM2: {hbm}\nDDR4: {ddr}\nCLP ratio {}x, row-size ratio 1/{}x",
        hbm.num_channels() / ddr.num_channels(),
        ddr.row_bytes() / hbm.row_bytes()
    );

    header("Throughput by workload shape (GB/s)");
    row(&[
        "workload".into(),
        "HBM2".into(),
        "DDR4".into(),
        "HBM/DDR".into(),
    ]);
    let n = 32_768u64;
    type Case = (
        &'static str,
        Box<dyn Fn(Geometry) -> Vec<sdam_hbm::DecodedAddr>>,
    );
    let cases: Vec<Case> = vec![
        (
            "stream",
            Box::new(move |g| (0..n).map(|i| g.decode(HardwareAddr(i * 64))).collect()),
        ),
        (
            "32 streams",
            Box::new(move |g| {
                (0..n)
                    .map(|i| {
                        let s = i % 32;
                        g.decode(HardwareAddr((s << 26) * 64 + (i / 32) * 64))
                    })
                    .collect()
            }),
        ),
        (
            "random",
            Box::new(move |g| {
                (0..n)
                    .map(|i| g.decode(HardwareAddr((i.wrapping_mul(0x9e3779b9) % (1 << 26)) * 64)))
                    .collect()
            }),
        ),
    ];
    for (name, gen) in cases {
        let h = run(hbm, Timing::hbm2(), gen(hbm));
        let d = run(ddr, Timing::ddr4(), gen(ddr));
        row(&[name.into(), gbps(h), gbps(d), format!("{:.1}x", h / d)]);
    }
    println!(
        "paper: 3D memory's peak (960 GB/s/socket) is ~10x DDR's\n\
         (102.4 GB/s); the gap is widest for concurrent request streams"
    );
}
