//! Ablation: how close is BFRV-based selection to the *best achievable*
//! bit permutation?
//!
//! The paper asserts (via Akin et al.) that bit-flip-rate ranking picks
//! good shuffles; this bin quantifies the claim in-model by
//! hill-climbing over permutations (pairwise swaps, greedy on measured
//! throughput) and comparing the optimum found against the analytic
//! selection — per access pattern.

use sdam_bench::{f2, gbps, header, row};
use sdam_hbm::{Geometry, Hbm, Timing};
use sdam_mapping::{
    select, AddressMapping, BitFlipRateVector, BitPermutation, BitShuffleMapping, PhysAddr,
};

fn throughput(perm: &BitPermutation, geom: Geometry, addrs: &[u64]) -> f64 {
    let m = BitShuffleMapping::new(perm.clone());
    let mut dev = Hbm::new(geom, Timing::hbm2());
    dev.run_open_loop(addrs.iter().map(|&a| geom.decode(m.map(PhysAddr(a)))))
        .throughput_gbps()
}

/// Greedy hill climbing over pairwise swaps of the permutation table,
/// restarted from the analytic selection. Deterministic.
fn hill_climb(start: BitPermutation, geom: Geometry, addrs: &[u64]) -> (BitPermutation, f64) {
    let n = start.len();
    let mut best = start;
    let mut best_t = throughput(&best, geom, addrs);
    loop {
        let mut improved = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let mut table = best.table().to_vec();
                table.swap(i, j);
                let cand = BitPermutation::new(best.lo(), table).expect("swap keeps validity");
                let t = throughput(&cand, geom, addrs);
                if t > best_t * 1.001 {
                    best = cand;
                    best_t = t;
                    improved = true;
                }
            }
        }
        if !improved {
            return (best, best_t);
        }
    }
}

fn main() {
    let geom = Geometry::hbm2_8gb();
    let n = 4096u64;
    header("Ablation: BFRV selection vs hill-climbed optimum (GB/s)");
    row(&[
        "pattern".into(),
        "default".into(),
        "selected".into(),
        "climbed".into(),
        "sel/opt".into(),
    ]);
    let patterns: Vec<(&str, Vec<u64>)> = vec![
        ("stride-16", (0..n).map(|i| i * 16 * 64).collect()),
        ("stride-48", (0..n).map(|i| i * 48 * 64).collect()),
        (
            "2d-tile 8x8",
            (0..n)
                .map(|i| {
                    let (tile, within) = (i / 64, i % 64);
                    let (tr, tc) = (tile / 8, tile % 8);
                    let (r, c) = (within / 8, within % 8);
                    ((tr * 8 + r) * 512 + (tc * 8 + c)) * 64
                })
                .collect(),
        ),
        ("rev-stream", (0..n).map(|i| (n - 1 - i) * 64).collect()),
    ];
    for (name, addrs) in patterns {
        let identity = BitPermutation::identity(6, (geom.addr_bits() - 6) as usize);
        let base = throughput(&identity, geom, &addrs);
        let bfrv = BitFlipRateVector::from_addrs(addrs.iter().copied(), geom.addr_bits());
        let selected = select::permutation_for_bfrv(&bfrv, geom);
        let sel_t = throughput(&selected, geom, &addrs);
        let (_, opt_t) = hill_climb(selected, geom, &addrs);
        row(&[
            name.into(),
            gbps(base),
            gbps(sel_t),
            gbps(opt_t),
            f2(sel_t / opt_t),
        ]);
    }
    println!(
        "selection lands within a few percent of the local optimum on\n\
         regular patterns — the property the paper relies on when it\n\
         selects mappings analytically instead of searching"
    );
}
