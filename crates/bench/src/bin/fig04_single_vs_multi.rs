//! Figure 4: throughput of workloads mixing 1–4 distinct strides, with
//! one globally-selected mapping ("Single") vs an independently-selected
//! mapping per access pattern ("Multi").
//!
//! Paper: a single global mapping cannot deliver the best performance
//! once patterns mix; the gap grows with the number of distinct strides.

use sdam_bench::{gbps, header, row};
use sdam_hbm::{DecodedAddr, Geometry, Hbm, Timing};
use sdam_mapping::{select, AddressMapping, BitFlipRateVector, PhysAddr};
use sdam_trace::gen::{interleave_round_robin, StrideGen};
use sdam_trace::{Trace, VariableId};

fn mixed_streams(strides: &[u64], per_stream: u64) -> Vec<Trace> {
    strides
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            StrideGen::new((i as u64) << 30, s * 64, per_stream)
                .variable(VariableId(i as u32))
                .into_trace()
        })
        .collect()
}

fn run(geom: Geometry, addrs: Vec<DecodedAddr>) -> f64 {
    let mut hbm = Hbm::new(geom, Timing::hbm2());
    hbm.run_open_loop(addrs).throughput_gbps()
}

fn main() {
    let geom = Geometry::hbm2_8gb();
    let per_stream = 16_384u64;
    let cases: [&[u64]; 4] = [&[1], &[1, 16], &[1, 8, 16], &[1, 4, 8, 16]];

    header("Fig. 4: single vs multiple address mappings, mixed strides");
    row(&[
        "#strides".into(),
        "single GB/s".into(),
        "multi GB/s".into(),
        "multi/single".into(),
    ]);
    for strides in cases {
        let streams = mixed_streams(strides, per_stream);
        let mix = interleave_round_robin(streams.clone());

        // Single: the globally best bit-shuffle for the whole mix.
        let bfrv = BitFlipRateVector::from_addrs(mix.addrs(), geom.addr_bits());
        let global = select::shuffle_for_bfrv(&bfrv, geom);
        let single = run(
            geom,
            mix.addrs()
                .map(|a| geom.decode(global.map(PhysAddr(a))))
                .collect(),
        );

        // Multi: each stride stream gets its own optimal mapping.
        let mappings: Vec<_> = strides
            .iter()
            .map(|&s| select::shuffle_for_stride(s, geom))
            .collect();
        let remapped: Vec<Trace> = streams
            .iter()
            .zip(&mappings)
            .map(|(t, m)| {
                t.iter()
                    .map(|a| sdam_trace::MemAccess {
                        addr: m.map(PhysAddr(a.addr)).raw(),
                        ..*a
                    })
                    .collect()
            })
            .collect();
        let multi_mix = interleave_round_robin(remapped);
        let multi = run(
            geom,
            multi_mix
                .addrs()
                .map(|a| geom.decode(sdam_hbm::HardwareAddr(a)))
                .collect(),
        );

        row(&[
            strides.len().to_string(),
            gbps(single),
            gbps(multi),
            format!("{:.2}x", multi / single),
        ]);
    }
    println!(
        "paper: equal at one stride; the multi-mapping advantage grows as \
         patterns mix"
    );
}
