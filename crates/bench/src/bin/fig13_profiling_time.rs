//! Figure 13: mapping-selection (profiling) time, K-Means vs DL-assisted
//! K-Means, at 4 and 32 clusters.
//!
//! The paper measures minutes on an i7 workstation at Table-2 scale
//! (500 k LSTM steps); we run the laptop-scale configuration and report
//! the same *ordering*: ML is orders of magnitude cheaper than DL, and
//! ML's cost is much more sensitive to the cluster count.

use std::time::Instant;

use sdam::{pipeline, profiling, Experiment, SystemConfig};
use sdam_bench::{exit_on_err, header, row, scale_from_args};
use sdam_workloads::{standard_suite, Workload};

fn main() {
    let mut exp = Experiment::bench();
    exp.scale = if std::env::args().len() > 1 {
        scale_from_args()
    } else {
        sdam_workloads::Scale::small()
    };
    // A representative subset (running all 19 through DL twice is slow).
    let names = ["perlbench", "mcf", "omnetpp", "streamcluster"];
    let suite = standard_suite();
    let picks: Vec<&Box<dyn Workload>> =
        suite.iter().filter(|w| names.contains(&w.name())).collect();

    header("Fig. 13: mapping-selection time per benchmark (ms; ML is sub-ms)");
    row(&[
        "benchmark".into(),
        "ML(4)".into(),
        "ML(32)".into(),
        "DL(4)".into(),
        "DL(32)".into(),
    ]);
    let mut totals = [0.0f64; 4];
    for w in &picks {
        let data = exit_on_err(profiling::try_profile_on_baseline(w.as_ref(), &exp));
        let configs = [
            SystemConfig::SdmBsmMl { clusters: 4 },
            SystemConfig::SdmBsmMl { clusters: 32 },
            SystemConfig::SdmBsmDl { clusters: 4 },
            SystemConfig::SdmBsmDl { clusters: 32 },
        ];
        let mut cells = vec![w.name().to_string()];
        for (i, config) in configs.into_iter().enumerate() {
            let t = Instant::now();
            let _ = exit_on_err(profiling::try_select_mappings(config, &data, &exp));
            let ms = t.elapsed().as_secs_f64() * 1e3;
            totals[i] += ms;
            cells.push(format!("{ms:.3}"));
        }
        row(&cells);
    }
    let mut cells = vec!["mean".to_string()];
    for t in totals {
        cells.push(format!("{:.3}", t / picks.len() as f64));
    }
    row(&cells);
    println!(
        "\npaper (Table-2 scale, i7): ML 0.3 min (4) / 2 min (32); \
         DL 26 min (4) / 29 min (32)"
    );

    // Sanity: the paper's amortization claim — selection is far cheaper
    // than the run it optimizes (for ML).
    if let Some(w) = picks.first() {
        let t = Instant::now();
        let _ = exit_on_err(pipeline::try_run(w.as_ref(), SystemConfig::BsDm, &exp));
        println!(
            "one simulated evaluation run of {}: {:.1} ms",
            w.name(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }
}
