//! Figure 2: channel-conflict illustration for two address mappings and
//! two access patterns (stride 1 and stride 16).
//!
//! Reproduces the figure's message as a table: which channels the first
//! 16 accesses of each pattern land on under each mapping, and how many
//! distinct channels are used.

use std::collections::HashSet;

use sdam_bench::header;
use sdam_hbm::Geometry;
use sdam_mapping::{select, AddressMapping, IdentityMapping, PhysAddr};

fn channels(m: &dyn AddressMapping, geom: Geometry, stride_lines: u64) -> Vec<u64> {
    (0..16u64)
        .map(|i| geom.decode(m.map(PhysAddr(i * stride_lines * 64))).channel)
        .collect()
}

fn main() {
    // The paper's Fig. 2 uses a 16-channel device (4-bit channel field).
    let geom = Geometry::hbm2_4gb();
    let mapping1 = IdentityMapping;
    let mapping2 = select::shuffle_for_stride(16, geom);

    header("Fig. 2: channel assignment of the first 16 accesses");
    for (name, m) in [
        ("mapping 1 (default)", &mapping1 as &dyn AddressMapping),
        (
            "mapping 2 (row LSBs -> channel)",
            &mapping2 as &dyn AddressMapping,
        ),
    ] {
        for stride in [1u64, 16] {
            let chs = channels(m, geom, stride);
            let distinct: HashSet<u64> = chs.iter().copied().collect();
            let conflicts = 16 - distinct.len();
            println!(
                "{name:<32} stride {stride:>2}: channels {chs:?}  ({} distinct, {} conflicts)",
                distinct.len(),
                conflicts
            );
        }
    }
    println!(
        "\npaper: mapping 1 serves stride-1 conflict-free but collapses on \
         stride-16; mapping 2 is the reverse"
    );
}
