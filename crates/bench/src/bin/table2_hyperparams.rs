//! Table 2: training hyper-parameters of the embedding-LSTM model.
//!
//! Prints the paper configuration (verbatim Table 2) and the downscaled
//! laptop configuration the benches use.

use sdam_bench::header;
use sdam_ml::TrainingConfig;

fn print_config(name: &str, c: &TrainingConfig) {
    println!("{name}:");
    println!("  Network size       {}x{} LSTM", c.hidden_dim, c.layers);
    println!("  Steps              {}", c.steps);
    println!("  Embedding size     {}", c.embedding_dim);
    println!("  Learning rate      {}", c.learning_rate);
    println!("  Sequence length    {}", c.seq_len);
    println!("  lambda             {}", c.lambda);
}

fn main() {
    header("Table 2: training hyper-parameters");
    print_config("paper (Table 2)", &TrainingConfig::paper());
    println!();
    print_config(
        "laptop preset (used by the benches)",
        &TrainingConfig::laptop(),
    );
}
