//! Background (paper §2.1): CLP dominates BLP and RLP.
//!
//! "Memory accesses to independent channels can be served fully in
//! parallel ... accesses to different banks in a channel ... [have] to
//! be serialized due to contention for shared resources in the same
//! memory channel." This bin quantifies the three parallelism levels
//! in the device model: spread a fixed request stream over k channels,
//! k banks (one channel), or k rows (one bank) and compare.

use sdam_bench::{gbps, header, row};
use sdam_hbm::{Geometry, Hbm, Timing};

fn main() {
    let geom = Geometry::hbm2_8gb();
    let n = 16_384u64;
    header("Background §2.1: parallelism levels (GB/s for the same stream)");
    row(&["k".into(), "channels".into(), "banks".into(), "rows".into()]);
    for k in [1u64, 2, 4, 8, 16] {
        // Across k channels (bank 0, row walk within).
        let clp: Vec<_> = (0..n)
            .map(|i| geom.decode(geom.encode(i / (4 * k), 0, i % k, (i / k) % 4)))
            .collect();
        // Across k banks of channel 0.
        let blp: Vec<_> = (0..n)
            .map(|i| geom.decode(geom.encode(i / (4 * k), i % k, 0, (i / k) % 4)))
            .collect();
        // Across k rows of bank 0, channel 0 (round-robin rows: all
        // conflicts — the worst case RLP can express).
        let rlp: Vec<_> = (0..n)
            .map(|i| geom.decode(geom.encode(i % k, 0, 0, (i / k) % 4)))
            .collect();
        let run = |addrs: Vec<sdam_hbm::DecodedAddr>| {
            // Bank hashing off so the BLP/RLP columns measure exactly
            // what they claim.
            let mut dev = Hbm::new(geom, Timing::hbm2()).without_bank_hash();
            dev.run_open_loop(addrs).throughput_gbps()
        };
        row(&[
            k.to_string(),
            gbps(run(clp)),
            gbps(run(blp)),
            gbps(run(rlp)),
        ]);
    }
    println!(
        "channels scale linearly (independent buses); banks saturate at the\n\
         shared channel bus; extra rows in one bank only add conflicts —\n\
         the hierarchy CLP > BLP > RLP that motivates the paper"
    );
}
