//! Table 3: FPGA resource utilization.
//!
//! We have no VU37P to synthesize for, so this prints the analytical
//! area model (`sdam_mapping::area`): crossbar switches and SRAM bits
//! against the device budgets, next to the paper's synthesis numbers.
//! The claim being reproduced is proportional: AMU + CMT are negligible
//! next to the BOOM core.

use sdam_bench::header;
use sdam_mapping::area::{area_report, ResourceEstimate};
use sdam_mapping::Cmt;

fn line(name: &str, est: ResourceEstimate, paper_logic: f64, paper_sram: f64) {
    let (logic, sram) = est.as_percent();
    println!("{name:<16} {logic:>9.2}% {sram:>9.2}%   | {paper_logic:>6.1}% {paper_sram:>6.1}%");
}

fn main() {
    // The paper's 8 GB device with 2 MB chunks and 8 AMU replicas.
    let cmt = Cmt::new(33, 21);
    let report = area_report(&cmt, 8);

    header("Table 3: FPGA resource utilization (model vs paper)");
    println!(
        "{:<16} {:>10} {:>10}   | {:>7} {:>7}",
        "block", "logic(m)", "sram(m)", "logic", "sram"
    );
    line("BOOM core", report.boom_core, 91.8, 88.0);
    line("HBM controller", report.hbm_controller, 7.5, 10.2);
    line("AMU (x8)", report.amu, 0.5, 0.0);
    line("CMT", report.cmt, 0.2, 1.8);

    println!(
        "\nCMT storage: two-level {:.1} KB vs flat {:.1} KB (paper: 67.94 KB vs 491 kB)",
        cmt.storage_bits_two_level() as f64 / 8.0 / 1000.0,
        cmt.storage_bits_flat() as f64 / 8.0 / 1000.0,
    );
    let paper128 = Cmt::paper_128gb();
    println!(
        "128 GB-socket CMT (64 K chunks): two-level {:.1} KB vs flat {:.1} KB",
        paper128.storage_bits_two_level() as f64 / 8.0 / 1000.0,
        paper128.storage_bits_flat() as f64 / 8.0 / 1000.0,
    );
}
