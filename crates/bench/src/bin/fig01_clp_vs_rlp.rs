//! Figure 1: HBM throughput vs number of channels (CLP) and vs
//! row-buffer hit rate (RLP).
//!
//! Paper's claim: throughput scales ~linearly with the number of
//! utilized channels and only sub-linearly with row-buffer utilization.

use sdam_bench::{gbps, header, row};
use sdam_hbm::{DecodedAddr, Geometry, Hbm, Timing};

fn stream_on_channels(geom: Geometry, channels: u64, n: u64) -> Vec<DecodedAddr> {
    let cols = 1u64 << geom.col_bits();
    (0..n)
        .map(|i| {
            let ch = i % channels;
            let within = i / channels;
            geom.decode(geom.encode(within / cols, 0, ch, within % cols))
        })
        .collect()
}

/// A single-channel stream whose row-buffer hit rate is
/// `(cols_per_row - 1) / cols_per_row`.
fn stream_with_row_hits(geom: Geometry, cols_per_row: u64, n: u64) -> Vec<DecodedAddr> {
    (0..n)
        .map(|i| geom.decode(geom.encode(i / cols_per_row, 0, 0, i % cols_per_row)))
        .collect()
}

fn main() {
    let geom = Geometry::hbm2_8gb();
    let n = 65_536u64;

    header("Fig. 1(a): throughput vs utilized channels (CLP)");
    row(&["channels".into(), "GB/s".into(), "scaling".into()]);
    let mut base = 0.0;
    for k in [1u64, 2, 4, 8, 16, 32] {
        let mut hbm = Hbm::new(geom, Timing::hbm2());
        let stats = hbm.run_open_loop(stream_on_channels(geom, k, n));
        let t = stats.throughput_gbps();
        if k == 1 {
            base = t;
        }
        row(&[k.to_string(), gbps(t), format!("{:.1}x", t / base)]);
    }
    println!("paper: linear scaling with channel count");

    header("Fig. 1(b): throughput vs row-buffer hit rate (RLP), 1 channel / 1 bank");
    // Bank hashing is disabled here so the stream really exercises one
    // bank — RLP in isolation, as the paper's microbenchmark does.
    row(&[
        "cols/row".into(),
        "hit-rate".into(),
        "GB/s".into(),
        "scaling".into(),
    ]);
    let mut base = 0.0;
    for cols in [1u64, 2, 4] {
        let mut hbm = Hbm::new(geom, Timing::hbm2()).without_bank_hash();
        let stats = hbm.run_open_loop(stream_with_row_hits(geom, cols, n));
        let t = stats.throughput_gbps();
        if cols == 1 {
            base = t;
        }
        row(&[
            cols.to_string(),
            format!("{:.2}", stats.row_hit_rate().unwrap_or(0.0)),
            gbps(t),
            format!("{:.1}x", t / base),
        ]);
    }
    println!(
        "paper: sub-linear scaling with row-buffer utilization (x-fold more \
         columns gives less than x-fold throughput)"
    );
}
