//! Extension: SDAM on the *other* 3D memory — a Hybrid Memory Cube
//! organization (16 vaults, 8 banks each).
//!
//! The paper's title is "a case on 3D memory"; HBM is the instantiated
//! case and HMC the named alternative. The mechanism is
//! geometry-agnostic: the CMT/AMU carry a permutation of the chunk
//! offset, and the selection logic reads the field layout from the
//! [`sdam_hbm::Geometry`]. This bin replays the stride-collapse and
//! mapping-fix experiments on the HMC geometry.

use sdam::{pipeline, Experiment, SystemConfig};
use sdam_bench::{exit_on_err, f2, gbps, header, row, scale_from_args};
use sdam_hbm::{Geometry, HardwareAddr, Hbm, Timing};
use sdam_workloads::datacopy::DataCopy;

fn main() {
    let geom = Geometry::hmc_4gb();
    header("Extension: SDAM on an HMC organization");
    println!("device: {geom} (16 vaults as channels)");

    // Stride collapse under the boot-time mapping, as Fig. 3(a).
    header("Stride sweep, default mapping (vault-level parallelism)");
    row(&["stride".into(), "GB/s".into(), "vaults".into()]);
    for stride in [1u64, 2, 4, 8, 16] {
        let mut dev = Hbm::new(geom, Timing::hbm2());
        let stats =
            dev.run_open_loop((0..32_768u64).map(|i| geom.decode(HardwareAddr(i * stride * 64))));
        row(&[
            stride.to_string(),
            gbps(stats.throughput_gbps()),
            stats.channels_touched().to_string(),
        ]);
    }

    // End-to-end: the hostile stride fixed by SDAM, on HMC.
    header("End-to-end on HMC: stride-16 data copy");
    let mut exp = Experiment::quick();
    exp.geometry = geom;
    exp.scale = scale_from_args();
    let w = DataCopy::new(vec![16]);
    let cmp = exit_on_err(pipeline::try_compare(
        &w,
        &[SystemConfig::BsHm, SystemConfig::SdmBsm],
        &exp,
    ));
    for (config, speedup) in cmp.speedups() {
        println!("  {config:<10} {}x", f2(speedup));
    }
    println!(
        "\nthe same selection and allocation stack runs unmodified on the\n\
         HMC geometry — only the Geometry value changed"
    );
}
