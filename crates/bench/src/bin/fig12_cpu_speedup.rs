//! Figure 12: CPU speedup over BS+DM for (a) the 19 standard benchmarks
//! and (b) the 8 data-intensive benchmarks, across all configurations.
//!
//! BS+BSM is selected from the *workload mix* profile (the paper
//! combines 500 M cache misses across all benchmarks), which is why it
//! barely helps: no single shuffle suits every application.

use sdam::{pipeline, profiling, report, Experiment, SystemConfig};
use sdam_bench::{
    exit_on_err, f2, header, merged_comparison_metrics, scale_from_args, write_metrics_sidecar,
};
use sdam_mapping::BitFlipRateVector;
use sdam_workloads::{data_intensive_suite, standard_suite, Workload};

/// When `SDAM_CSV_DIR` is set, speedup tables are also written there as
/// CSV for plotting.
fn maybe_write_csv(tag: &str, comparisons: &[report::Comparison], configs: &[SystemConfig]) {
    let Ok(dir) = std::env::var("SDAM_CSV_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("fig12_{tag}.csv"));
    match std::fs::File::create(&path) {
        Ok(f) => {
            if let Err(e) = report::write_csv(comparisons, configs, f) {
                eprintln!("csv write failed: {e}");
            } else {
                println!("(csv written to {})", path.display());
            }
        }
        Err(e) => eprintln!("cannot create {}: {e}", path.display()),
    }
}

fn run_suite(name: &str, suite: &[Box<dyn Workload>], exp: &Experiment) -> Vec<report::Comparison> {
    let configs = SystemConfig::paper_lineup();

    // Profile every workload once; build the mix-level aggregate BFRV
    // that the BS+BSM baseline must use.
    let profiles: Vec<profiling::ProfileData> = suite
        .iter()
        .map(|w| exit_on_err(profiling::try_profile_on_baseline(w.as_ref(), exp)))
        .collect();
    let mix_aggregate =
        BitFlipRateVector::mean(profiles.iter().map(|p| &p.aggregate).collect::<Vec<_>>());

    header(&format!("Fig. 12 ({name}): speedup over BS+DM"));
    print!("{:<14}", "benchmark");
    for c in &configs[1..] {
        print!(" {:>15}", c.to_string());
    }
    println!();

    let mut comparisons = Vec::new();
    for (w, profile) in suite.iter().zip(&profiles) {
        let mut results = Vec::new();
        for &config in &configs {
            let data = if config == SystemConfig::BsBsm {
                // Global mapping from the mix, as the paper configures it.
                let mut mix = profile.clone();
                mix.aggregate = mix_aggregate.clone();
                mix
            } else {
                profile.clone()
            };
            results.push(exit_on_err(pipeline::try_run_with_profile(
                w.as_ref(),
                config,
                exp,
                Some(&data),
            )));
        }
        let metrics = {
            let mut m = sdam_obs::Registry::new();
            for r in &results {
                m.merge(&r.metrics);
            }
            m
        };
        let cmp = report::Comparison {
            workload: w.name().to_string(),
            results,
            metrics,
        };
        print!("{:<14}", cmp.workload);
        for &c in &configs[1..] {
            print!(" {:>15}", f2(cmp.speedup_of(c).expect("config was run")));
        }
        println!();
        comparisons.push(cmp);
    }

    print!("{:<14}", "geomean");
    for &c in &configs[1..] {
        print!(
            " {:>15}",
            f2(report::geomean_speedup(&comparisons, c).expect("all configs ran"))
        );
    }
    println!();
    maybe_write_csv(
        if name.starts_with('a') {
            "standard"
        } else {
            "data_intensive"
        },
        &comparisons,
        &configs,
    );
    comparisons
}

fn main() {
    let mut exp = Experiment::bench();
    // Fig. 12 defaults to the `small` scale: at `tiny` the data-intensive
    // kernels fit the 64 KB L1 and memory mapping cannot matter.
    exp.scale = if std::env::args().len() > 1 {
        scale_from_args()
    } else {
        sdam_workloads::Scale::small()
    };

    let std_cmp = run_suite("a: standard benchmarks", &standard_suite(), &exp);
    let di_cmp = run_suite(
        "b: data-intensive benchmarks",
        &data_intensive_suite(),
        &exp,
    );
    write_metrics_sidecar("fig12_standard", &merged_comparison_metrics(&std_cmp));
    write_metrics_sidecar("fig12_data_intensive", &merged_comparison_metrics(&di_cmp));

    header("paper reference points");
    println!(
        "standard:        BS+BSM 1.01x  BS+HM 1.14x  SDM+BSM 1.08x  \
         ML(4) 1.16x  ML(32) 1.27x  DL(4) 1.33x  DL(32) 1.43x"
    );
    println!("data-intensive:  BS+HM ~1.14x  ML(32) 1.44x  DL(32) 1.84x");
    let dl32 = SystemConfig::SdmBsmDl { clusters: 32 };
    println!(
        "\nours:            standard DL(32) {}x, data-intensive DL(32) {}x",
        f2(report::geomean_speedup(&std_cmp, dl32).expect("ran")),
        f2(report::geomean_speedup(&di_cmp, dl32).expect("ran")),
    );
}
