//! Figure 11: (a) four-thread data copy with 1–4 distinct strides,
//! normalized throughput of the five systems; (b) sorted CLP-utilization
//! distribution over 64 strides for BS+BSM, BS+HM, and SDM+BSM.

use sdam::{pipeline, Experiment, SystemConfig};
use sdam_bench::{
    exit_on_err, f2, header, merged_comparison_metrics, row, scale_from_args, write_metrics_sidecar,
};
use sdam_hbm::{Geometry, Hbm, Timing};
use sdam_mapping::{select, AddressMapping, BitFlipRateVector, HashMapping, PhysAddr};
use sdam_workloads::datacopy::DataCopy;

fn part_a() {
    let mut exp = Experiment::bench();
    exp.scale = scale_from_args();
    let configs = [
        SystemConfig::BsDm,
        SystemConfig::BsBsm,
        SystemConfig::BsHm,
        SystemConfig::SdmBsm,
        SystemConfig::SdmBsmMl { clusters: 4 },
    ];
    header("Fig. 11(a): 4-thread data copy, normalized throughput");
    let mut head = vec!["#strides".to_string()];
    head.extend(configs.iter().map(|c| c.to_string()));
    row(&head);

    // Normalize to the streaming (stride-1) BS+DM run, the peak.
    let streaming = exit_on_err(pipeline::try_run(
        &DataCopy::new(vec![1]),
        SystemConfig::BsDm,
        &exp,
    ));
    let peak = streaming.report.cycles as f64;

    let cases: [&[u64]; 4] = [&[1], &[1, 16], &[1, 8, 16], &[1, 4, 8, 16]];
    let mut comparisons = Vec::new();
    for strides in cases {
        let w = DataCopy::new(strides.to_vec());
        let cmp = exit_on_err(pipeline::try_compare(&w, &configs, &exp));
        let mut cells = vec![strides.len().to_string()];
        for c in configs {
            let cycles = cmp
                .results
                .iter()
                .find(|r| r.config == c)
                .expect("config was run")
                .report
                .cycles as f64;
            cells.push(f2(peak / cycles));
        }
        row(&cells);
        comparisons.push(cmp);
    }
    write_metrics_sidecar(
        "fig11_mixed_stride",
        &merged_comparison_metrics(&comparisons),
    );
    println!(
        "paper: BS+BSM matches SDM+BSM at one stride, degrades with the \
         mix; BS+HM is flat; SDM keeps the lead"
    );
}

fn part_b() {
    let geom = Geometry::hbm2_8gb();
    let n = 8192u64;
    header("Fig. 11(b): CLP utilization over strides 1..=64 (sorted ascending)");

    // BS+BSM: one global shuffle selected from the mix of all strides.
    let mix_addrs: Vec<u64> = (1..=64u64)
        .flat_map(|s| (0..512u64).map(move |i| i * s * 64))
        .collect();
    let global = select::shuffle_for_bfrv(
        &BitFlipRateVector::from_addrs(mix_addrs.iter().copied(), geom.addr_bits()),
        geom,
    );
    let hash = HashMapping::for_geometry(geom);

    let utilization = |mapping: &dyn AddressMapping, stride: u64| -> f64 {
        let mut hbm = Hbm::new(geom, Timing::hbm2());
        let stats =
            hbm.run_open_loop((0..n).map(|i| geom.decode(mapping.map(PhysAddr(i * stride * 64)))));
        stats.clp_utilization()
    };

    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, global_m) in [
        ("BS+BSM", Some(&global)),
        ("BS+HM", None),
        ("SDM+BSM", None),
    ] {
        let mut us: Vec<f64> = (1..=64u64)
            .map(|s| match (name, global_m) {
                ("BS+BSM", Some(g)) => utilization(g, s),
                ("BS+HM", _) => utilization(&hash, s),
                _ => {
                    // SDM+BSM: the per-pattern optimal mapping.
                    let m = select::shuffle_for_stride(s, geom);
                    utilization(&m, s)
                }
            })
            .collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        series.push((name, us));
    }

    row(&[
        "percentile".into(),
        "BS+BSM".into(),
        "BS+HM".into(),
        "SDM+BSM".into(),
    ]);
    for p in [0usize, 16, 32, 48, 63] {
        let mut cells = vec![format!("{}%", p * 100 / 63)];
        for (_, us) in &series {
            cells.push(f2(us[p]));
        }
        row(&cells);
    }
    for (name, us) in &series {
        let mean = us.iter().sum::<f64>() / us.len() as f64;
        println!("{name:<8} mean CLP utilization {mean:.2}");
    }
    println!(
        "paper: HM maximizes the average but leaves a low tail; SDM+BSM \
         is deterministically near-optimal for every stride"
    );
}

fn main() {
    part_a();
    part_b();
}
