//! Ablation: memory-controller modeling choices — the FR-FCFS reorder
//! window and the bank-address hash (DESIGN.md §7).
//!
//! Both knobs exist in real controllers; this shows what each
//! contributes in the simulator, so readers can judge how much of the
//! reproduction's behaviour comes from the device model vs the mapping.

use sdam_bench::{f2, gbps, header, row};
use sdam_hbm::{Geometry, HardwareAddr, Hbm, Timing};

fn stream(geom: Geometry, stride_lines: u64, n: u64) -> Vec<sdam_hbm::DecodedAddr> {
    (0..n)
        .map(|i| geom.decode(HardwareAddr(i * stride_lines * 64)))
        .collect()
}

/// Two interleaved chunk-aligned streams: the worst case for a
/// controller without bank hashing (same bank, alternating rows).
fn aligned_pair(geom: Geometry, n: u64) -> Vec<sdam_hbm::DecodedAddr> {
    (0..n)
        .map(|i| {
            let base = if i % 2 == 0 { 0u64 } else { 1 << 21 };
            geom.decode(HardwareAddr(base + (i / 2) * 64))
        })
        .collect()
}

/// Alternating accesses to two rows that share a bank even after the
/// bank hash (rows 0 and 17 fold to the same effective bank): the
/// pattern only a reorder window can batch into row hits.
fn row_pingpong(geom: Geometry, n: u64) -> Vec<sdam_hbm::DecodedAddr> {
    (0..n)
        .map(|i| {
            let row = if i % 2 == 0 { 0u64 } else { 17 };
            geom.decode(geom.encode(row, 0, 0, (i / 2) % 4))
        })
        .collect()
}

fn main() {
    let geom = Geometry::hbm2_8gb();
    let n = 16_384u64;

    header("Ablation: FR-FCFS reorder window (throughput, GB/s)");
    row(&[
        "window".into(),
        "stride-1".into(),
        "row ping-pong".into(),
        "random-ish".into(),
    ]);
    for window in [1usize, 4, 16, 64] {
        let mut cells = vec![window.to_string()];
        for pattern in 0..3 {
            let addrs = match pattern {
                0 => stream(geom, 1, n),
                1 => row_pingpong(geom, n),
                _ => (0..n)
                    .map(|i| {
                        geom.decode(HardwareAddr((i.wrapping_mul(0x9e3779b9) % (1 << 26)) * 64))
                    })
                    .collect(),
            };
            let mut hbm = Hbm::new(geom, Timing::hbm2());
            cells.push(gbps(
                hbm.run_open_loop_windowed(addrs, window).throughput_gbps(),
            ));
        }
        row(&cells);
    }
    println!("a bigger window batches the ping-pong into row hits; streams and\nrandom traffic are insensitive — window 16 (our default) is plenty");

    header("Ablation: bank-address hash on aligned cross-chunk streams");
    row(&["config".into(), "GB/s".into(), "row-hit rate".into()]);
    for (name, hash) in [("with hash", true), ("without", false)] {
        let mut hbm = Hbm::new(geom, Timing::hbm2());
        if !hash {
            hbm = hbm.without_bank_hash();
        }
        // In-order service (window 1), as a latency-bound core sees it.
        let stats = hbm.run_open_loop_windowed(aligned_pair(geom, n), 1);
        row(&[
            name.into(),
            gbps(stats.throughput_gbps()),
            f2(stats.row_hit_rate().unwrap_or(0.0)),
        ]);
    }
    println!(
        "without the hash, two chunk-aligned streams alternate rows in one\n\
         bank and every access is a row conflict — the pathology real\n\
         controllers avoid with permutation-based interleaving (MICRO-33)"
    );
}
