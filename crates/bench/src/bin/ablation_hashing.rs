//! Ablation: the default XOR fold vs the searched ("more comprehensive",
//! paper §7.3 future work) hash.
//!
//! The paper reports that a theoretically perfect hash bought <3 % over
//! the method of Liu et al.; our greedy search reproduces that
//! flat-tail conclusion: worst-stride coverage improves slightly, mean
//! CLP barely moves.

use sdam_bench::{f2, header, row};
use sdam_hbm::{Geometry, Hbm, Timing};
use sdam_mapping::{optimize_hash, AddressMapping, HashMapping, PhysAddr};

fn clp_over_strides(m: &dyn AddressMapping, geom: Geometry) -> (f64, f64) {
    let mut utils: Vec<f64> = (1..=64u64)
        .map(|stride| {
            let mut hbm = Hbm::new(geom, Timing::hbm2());
            hbm.run_open_loop((0..4096u64).map(|i| geom.decode(m.map(PhysAddr(i * stride * 64)))))
                .clp_utilization()
        })
        .collect();
    utils.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = utils.iter().sum::<f64>() / utils.len() as f64;
    (utils[0], mean)
}

fn main() {
    let geom = Geometry::hbm2_8gb();
    header("Ablation: default XOR fold vs greedy-searched hash");
    row(&["hash".into(), "worst CLP".into(), "mean CLP".into()]);
    let default = HashMapping::for_geometry(geom);
    let tuned = optimize_hash(geom, 64);
    for (name, hm) in [("default fold", &default), ("searched", &tuned)] {
        let (worst, mean) = clp_over_strides(hm as &dyn AddressMapping, geom);
        row(&[name.into(), f2(worst), f2(mean)]);
    }
    println!(
        "paper: a perfect hash gains <3 % over the default at much higher\n\
         cost — hashing's ceiling is structural, which is SDAM's opening"
    );
}
