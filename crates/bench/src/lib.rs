//! # sdam-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (§7); see
//! DESIGN.md's experiment index for the full mapping. Each binary
//! prints the same rows/series the paper reports, with the paper's
//! number next to ours where the paper states one.
//!
//! Run them all with:
//!
//! ```text
//! for b in fig01_clp_vs_rlp fig02_conflict_demo fig03_stride_throughput \
//!          fig04_single_vs_multi table1_variable_stats table2_hyperparams \
//!          table3_area table4_loc fig11_mixed_stride fig12_cpu_speedup \
//!          fig13_profiling_time fig14_freq_scaling fig15_accelerator; do
//!   cargo run --release -p sdam-bench --bin $b
//! done
//! ```
//!
//! Most binaries accept a scale argument (`tiny` | `small` | `large`,
//! default `tiny`) controlling workload size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdam_workloads::Scale;

/// Parses the common CLI scale argument (first positional arg).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::small(),
        Some("large") => Scale::large(),
        Some("tiny") | None => Scale::tiny(),
        Some(other) => {
            eprintln!("unknown scale '{other}', expected tiny|small|large; using tiny");
            Scale::tiny()
        }
    }
}

/// Unwraps a fallible pipeline result, printing the error and exiting
/// non-zero. The figure binaries want fail-fast behaviour with a
/// readable message instead of a panic backtrace, so every
/// `sdam::pipeline::try_*` call in them routes through here.
pub fn exit_on_err<T>(r: Result<T, sdam::SdamError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints a section header in a consistent style.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Writes a figure binary's merged observability snapshot as a stable
/// JSON sidecar: `$SDAM_METRICS_DIR/<tag>.metrics.json` (default
/// `target/metrics/`). The snapshot is [`sdam_obs::Registry::stable_json`]
/// — deterministic, so CI can pin it with a golden test. A build with
/// the `obs` feature disabled produces empty registries and writes
/// nothing.
pub fn write_metrics_sidecar(tag: &str, reg: &sdam_obs::Registry) {
    if reg.is_empty() {
        return;
    }
    let dir = std::env::var("SDAM_METRICS_DIR").unwrap_or_else(|_| "target/metrics".to_string());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {dir}: {e}");
        return;
    }
    let path = std::path::Path::new(&dir).join(format!("{tag}.metrics.json"));
    match std::fs::write(&path, reg.stable_json()) {
        Ok(()) => println!("(metrics written to {})", path.display()),
        Err(e) => eprintln!("metrics write failed for {}: {e}", path.display()),
    }
}

/// Merges the per-run snapshots of hand-built comparisons (the figure
/// binaries that assemble [`sdam::report::Comparison`] themselves) in
/// row order — mirroring what [`sdam::pipeline::compare`] does for its
/// own lineup.
pub fn merged_comparison_metrics(comparisons: &[sdam::report::Comparison]) -> sdam_obs::Registry {
    let mut reg = sdam_obs::Registry::new();
    for c in comparisons {
        if c.metrics.is_empty() {
            // Hand-built comparison: fold its rows directly.
            for r in &c.results {
                reg.merge(&r.metrics);
            }
        } else {
            // Pipeline-built: its merged snapshot already covers the rows.
            reg.merge(&c.metrics);
        }
    }
    reg
}

/// Prints an aligned row of cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput in GB/s.
pub fn gbps(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(gbps(123.45), "123.5");
    }
}
