//! Criterion benches for the mapping-selection learners: K-Means on
//! BFRVs and one LSTM-autoencoder training step (the unit the paper's
//! Fig. 13 cost is made of).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdam_ml::autoencoder::{LstmAutoencoder, SeqSample};
use sdam_ml::{kmeans, KMeansConfig, TrainingConfig};

fn bfrv_points(n: usize) -> Vec<Vec<f64>> {
    // Synthetic BFRVs of strided patterns: geometric decay starting at
    // a per-point bit position.
    (0..n)
        .map(|i| {
            let start = i % 10;
            (0..33)
                .map(|b| {
                    if b >= start {
                        0.5f64.powi((b - start) as i32)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let points = bfrv_points(64);
    let mut g = c.benchmark_group("kmeans_64_bfrvs");
    for k in [4usize, 32] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                black_box(kmeans(
                    &points,
                    &KMeansConfig {
                        k,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

fn bench_lstm_step(c: &mut Criterion) {
    let cfg = TrainingConfig::laptop();
    let mut ae = LstmAutoencoder::new(64, 8, 33, &cfg);
    let sample = SeqSample {
        delta_ids: (0..cfg.seq_len).map(|i| i % 64).collect(),
        vid_ids: vec![0; cfg.seq_len],
        delta_bits: (0..cfg.seq_len)
            .map(|i| (0..33).map(|b| ((i >> (b % 4)) & 1) as f64).collect())
            .collect(),
    };
    c.bench_function("lstm_autoencoder_train_step", |b| {
        b.iter(|| black_box(ae.train_step(&sample, None, cfg.learning_rate)))
    });
}

criterion_group!(benches, bench_kmeans, bench_lstm_step);
criterion_main!(benches);
