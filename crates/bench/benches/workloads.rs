//! Criterion benches for workload generation and trace I/O — the
//! harness's own overheads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdam_trace::io::{read_trace, write_trace};
use sdam_workloads::{Scale, Workload};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate_tiny");
    g.sample_size(10);
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(sdam_workloads::graph::PageRank),
        Box::new(sdam_workloads::analytics::HashJoin),
        Box::new(sdam_workloads::ann::Ivfpq),
        Box::new(sdam_workloads::datacopy::DataCopy::new(vec![1, 16])),
    ];
    for w in workloads {
        g.bench_function(w.name(), |b| {
            b.iter(|| black_box(w.generate(Scale::tiny())))
        });
    }
    g.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let trace = sdam_workloads::datacopy::DataCopy::new(vec![4]).generate(Scale::tiny());
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).expect("write to memory");
    let mut g = c.benchmark_group("trace_io");
    g.bench_function("write_20k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            write_trace(black_box(&trace), &mut out).expect("write");
            black_box(out)
        })
    });
    g.bench_function("read_20k", |b| {
        b.iter(|| black_box(read_trace(buf.as_slice()).expect("read")))
    });
    g.finish();
}

fn bench_profiling_stats(c: &mut Criterion) {
    let trace = sdam_workloads::graph::PageRank.generate(Scale::tiny());
    let mut g = c.benchmark_group("trace_stats");
    g.sample_size(10);
    g.bench_function("stride_histogram", |b| {
        b.iter(|| black_box(sdam_trace::stats::StrideHistogram::from_trace(&trace)))
    });
    g.bench_function("working_set", |b| {
        b.iter(|| black_box(sdam_trace::stats::WorkingSet::of(&trace)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_trace_io,
    bench_profiling_stats
);
criterion_main!(benches);
