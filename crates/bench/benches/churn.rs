//! Control-plane churn benchmark: the flat-array chunk allocator
//! against the preserved BTree reference under tenant-lifecycle load.
//!
//! The tenant-churn script (`sdam_workloads::churn`) is lowered to a
//! pure alloc/free stream and driven through both implementations at
//! 64, 512, and 4096 live tenants. Running this bench records
//! control-plane ops/s for both, the fragmentation read off the flat
//! state (free-list length, longest contiguous free run), and a
//! full-stack `SdamSystem` churn run (processes, heaps, CMT, pid and
//! mapping-id recycling) into `BENCH_churn.json` — and enforces the
//! acceptance guards:
//!
//! * golden equivalence: both allocators produce identical address
//!   checksums, error counts, and claim/release counters on every
//!   scale's stream;
//! * flat scaling: ops/s at 4096 tenants stays within 2x of 64
//!   tenants (the O(1) headline);
//! * conservation under churn: after the script's drain phase,
//!   `chunks_claimed - chunks_released == 0` and no chunk stays in
//!   use.
//!
//! Any violation panics, so the CI control-plane guard fails loudly.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use sdam::{ProcessId, SdamSystem};
use sdam_hbm::Geometry;
use sdam_mapping::{BitPermutation, MappingId, PhysAddr};
use sdam_mem::phys::{ChunkAllocator, ChunkAllocatorReference, FragmentationStats};
use sdam_mem::VirtAddr;
use sdam_workloads::churn::{generate, ChurnConfig, TenantOp};

/// 8 GB in 2 MB chunks: 4096 chunks, 512 pages each.
const ADDR_BITS: u32 = 33;
const CHUNK_BITS: u32 = 21;
const PAGE_BITS: u32 = 12;
/// Steady-state ops per scale (constant so ops/s is comparable).
const STEADY_OPS: usize = 20_000;
/// Dedicated-mapping cap shared by all scales.
const MAPPING_CAP: usize = 200;

/// The tenant script lowered to raw allocator operations.
#[derive(Debug, Clone, Copy)]
enum CtlOp {
    Alloc {
        slot: u32,
        mapping: u8,
        order: u32,
        sensitive: bool,
    },
    Free {
        slot: u32,
        pick: u32,
    },
    /// Tenant departure: free every live block of the slot.
    Drain {
        slot: u32,
    },
}

/// Lowers the lifecycle script: arrivals bind a mapping id from a
/// 1..=MAPPING_CAP pool (recycled LIFO on departure, mirroring the
/// CMT's rule), heap/mmap traffic becomes block allocations, touches
/// become page claims.
fn lower(config: ChurnConfig) -> (Vec<CtlOp>, u32) {
    let script = generate(config);
    let mut ops = Vec::with_capacity(script.ops.len());
    let mut mapping_of = vec![0u8; script.sessions as usize];
    let mut pool: Vec<u8> = (1..=MAPPING_CAP as u8).rev().collect();
    for op in &script.ops {
        match *op {
            TenantOp::Arrive {
                session,
                own_mapping,
            } => {
                mapping_of[session as usize] = if own_mapping {
                    pool.pop().expect("the generator respects the cap")
                } else {
                    0
                };
            }
            TenantOp::Malloc {
                session,
                bytes,
                sensitive,
            } => {
                let pages = (bytes >> PAGE_BITS).max(1);
                let order = (63 - pages.leading_zeros() as u64).min(3) as u32;
                ops.push(CtlOp::Alloc {
                    slot: session,
                    mapping: mapping_of[session as usize],
                    order,
                    sensitive,
                });
            }
            TenantOp::Mmap { session, pages } => {
                let order = (31 - (pages.max(1)).leading_zeros()).min(3);
                ops.push(CtlOp::Alloc {
                    slot: session,
                    mapping: mapping_of[session as usize],
                    order,
                    sensitive: false,
                });
            }
            TenantOp::Touch { session, .. } => ops.push(CtlOp::Alloc {
                slot: session,
                mapping: mapping_of[session as usize],
                order: 0,
                sensitive: false,
            }),
            TenantOp::Free { session, pick } | TenantOp::Munmap { session, pick } => {
                ops.push(CtlOp::Free {
                    slot: session,
                    pick,
                })
            }
            TenantOp::Depart { session } => {
                ops.push(CtlOp::Drain { slot: session });
                let m = mapping_of[session as usize];
                if m != 0 {
                    pool.push(m);
                }
            }
        }
    }
    (ops, script.sessions)
}

/// What a drive produced — compared across implementations for the
/// golden-equivalence guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DriveResult {
    checksum: u64,
    ok_allocs: u64,
    alloc_errors: u64,
    ctl_ops: u64,
    chunks_claimed: u64,
    chunks_released: u64,
}

macro_rules! make_driver {
    ($name:ident, $ty:ty) => {
        /// Applies the lowered stream; returns the result fingerprint,
        /// peak-occupancy fragmentation (when `capture_frag` — the scan
        /// is O(n) on the reference, so timed runs skip it), and wall
        /// seconds.
        fn $name(
            stream: &[CtlOp],
            sessions: u32,
            capture_frag: bool,
        ) -> (DriveResult, FragmentationStats, f64) {
            let t0 = Instant::now();
            let mut a = <$ty>::new(ADDR_BITS, CHUNK_BITS, PAGE_BITS);
            let mut live: Vec<Vec<PhysAddr>> = vec![Vec::new(); sessions as usize];
            let mut r = DriveResult {
                checksum: 0,
                ok_allocs: 0,
                alloc_errors: 0,
                ctl_ops: 0,
                chunks_claimed: 0,
                chunks_released: 0,
            };
            let mut frag = FragmentationStats {
                free_chunks: 0,
                max_contiguous_free_run: 0,
                guard_chunks: 0,
                stranded_pages: 0,
            };
            let mut peak_in_use = 0u64;
            for op in stream {
                match *op {
                    CtlOp::Alloc {
                        slot,
                        mapping,
                        order,
                        sensitive,
                    } => {
                        let res = if sensitive {
                            a.alloc_block_sensitive(MappingId(mapping), order)
                        } else {
                            a.alloc_block(MappingId(mapping), order)
                        };
                        match res {
                            Ok(p) => {
                                r.checksum = r.checksum.rotate_left(1) ^ p.pa.raw();
                                live[slot as usize].push(p.pa);
                                r.ok_allocs += 1;
                            }
                            Err(_) => r.alloc_errors += 1,
                        }
                        r.ctl_ops += 1;
                    }
                    CtlOp::Free { slot, pick } => {
                        let v = &mut live[slot as usize];
                        if !v.is_empty() {
                            let pa = v.swap_remove(pick as usize % v.len());
                            a.free_block(pa).expect("freeing a live block");
                            r.ctl_ops += 1;
                        }
                    }
                    CtlOp::Drain { slot } => {
                        // Measure fragmentation at peak occupancy, not
                        // after the end-of-script drain emptied it.
                        if capture_frag && a.in_use_chunks() >= peak_in_use {
                            peak_in_use = a.in_use_chunks();
                            frag = a.fragmentation_stats();
                        }
                        for pa in std::mem::take(&mut live[slot as usize]) {
                            a.free_block(pa).expect("freeing a live block");
                            r.ctl_ops += 1;
                        }
                    }
                }
            }
            assert_eq!(
                a.chunks_claimed() - a.chunks_released(),
                0,
                "chunks leaked across the drain"
            );
            assert_eq!(a.internal_fragmentation_pages(), 0);
            r.chunks_claimed = a.chunks_claimed();
            r.chunks_released = a.chunks_released();
            (r, frag, t0.elapsed().as_secs_f64())
        }
    };
}

make_driver!(drive_flat, ChunkAllocator);
make_driver!(drive_reference, ChunkAllocatorReference);

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

struct ScaleRow {
    tenants: usize,
    ctl_ops: u64,
    flat_ops_per_s: f64,
    reference_ops_per_s: f64,
    frag: FragmentationStats,
}

fn run_scale(tenants: usize, runs: usize) -> ScaleRow {
    let cfg = ChurnConfig {
        tenants,
        ops: STEADY_OPS,
        mapping_cap: MAPPING_CAP,
        ..ChurnConfig::default()
    };
    let (stream, sessions) = lower(cfg);

    // Golden equivalence first: one paired run, every fingerprint field
    // must match.
    let (flat_r, frag, _) = drive_flat(&stream, sessions, true);
    let (ref_r, ref_frag, _) = drive_reference(&stream, sessions, true);
    assert_eq!(
        flat_r, ref_r,
        "flat allocator diverged from the BTree reference at {tenants} tenants"
    );
    assert_eq!(
        frag, ref_frag,
        "fragmentation stats diverged at {tenants} tenants"
    );

    let mut flat_s: Vec<f64> = (0..runs)
        .map(|_| black_box(drive_flat(&stream, sessions, false)).2)
        .collect();
    let mut ref_s: Vec<f64> = (0..runs)
        .map(|_| black_box(drive_reference(&stream, sessions, false)).2)
        .collect();
    ScaleRow {
        tenants,
        ctl_ops: flat_r.ctl_ops,
        flat_ops_per_s: flat_r.ctl_ops as f64 / median(&mut flat_s),
        reference_ops_per_s: ref_r.ctl_ops as f64 / median(&mut ref_s),
        frag,
    }
}

/// Permutation for a tenant's dedicated mapping: a session-dependent
/// swap inside the chunk-offset window.
fn tenant_perm(session: u32) -> BitPermutation {
    let n = (CHUNK_BITS - 6) as usize;
    let mut table: Vec<u32> = (0..n as u32).collect();
    table.swap(session as usize % (n - 1), session as usize % (n - 1) + 1);
    BitPermutation::new(6, table).expect("a swap is a permutation")
}

struct SystemRow {
    tenants: usize,
    ops: u64,
    ops_per_s: f64,
    chunks_claimed: u64,
    chunks_released: u64,
    processes_exited: u64,
    page_faults: u64,
}

/// Full-stack churn: the same script drives a live `SdamSystem` —
/// processes spawn and exit, heaps grow, pages fault chunks in, pids
/// and mapping ids recycle through their free lists.
fn run_system_churn(tenants: usize, steady_ops: usize) -> SystemRow {
    #[derive(Default)]
    struct Tenant {
        pid: ProcessId,
        mapping: Option<MappingId>,
        objects: Vec<(VirtAddr, u64)>,
        regions: Vec<(VirtAddr, u64)>,
    }
    let cfg = ChurnConfig {
        tenants,
        ops: steady_ops,
        mapping_cap: MAPPING_CAP,
        ..ChurnConfig::default()
    };
    let script = generate(cfg);
    let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), CHUNK_BITS);
    let mut slots: Vec<Option<Tenant>> = (0..script.sessions).map(|_| None).collect();
    let t0 = Instant::now();
    let mut applied = 0u64;
    for op in &script.ops {
        applied += 1;
        match *op {
            TenantOp::Arrive {
                session,
                own_mapping,
            } => {
                let mapping =
                    own_mapping.then(|| sys.add_mapping(&tenant_perm(session)).expect("under cap"));
                slots[session as usize] = Some(Tenant {
                    pid: sys.spawn_process(),
                    mapping,
                    objects: Vec::new(),
                    regions: Vec::new(),
                });
            }
            TenantOp::Malloc { session, bytes, .. } => {
                let t = slots[session as usize].as_mut().expect("live session");
                let va = sys
                    .malloc_in(t.pid, bytes, t.mapping)
                    .expect("8 GB outlasts the working set");
                t.objects.push((va, bytes));
            }
            TenantOp::Free { session, pick } => {
                let t = slots[session as usize].as_mut().expect("live session");
                if !t.objects.is_empty() {
                    let (va, _) = t.objects.swap_remove(pick as usize % t.objects.len());
                    sys.free_in(t.pid, va).expect("freeing a live allocation");
                }
            }
            TenantOp::Mmap { session, pages } => {
                let t = slots[session as usize].as_mut().expect("live session");
                let len = u64::from(pages) << PAGE_BITS;
                let va = sys.mmap_in(t.pid, len, t.mapping.unwrap_or(MappingId::DEFAULT));
                t.regions.push((va.expect("address space is vast"), len));
            }
            TenantOp::Munmap { session, pick } => {
                let t = slots[session as usize].as_mut().expect("live session");
                if !t.regions.is_empty() {
                    let (va, _) = t.regions.swap_remove(pick as usize % t.regions.len());
                    sys.munmap_in(t.pid, va).expect("unmapping a live region");
                }
            }
            TenantOp::Touch {
                session,
                pick,
                pages,
            } => {
                let t = slots[session as usize].as_mut().expect("live session");
                let all = t.objects.len() + t.regions.len();
                if all == 0 {
                    continue;
                }
                let i = pick as usize % all;
                let (va, len) = if i < t.objects.len() {
                    t.objects[i]
                } else {
                    t.regions[i - t.objects.len()]
                };
                let pid = t.pid;
                let max_pages = (len >> PAGE_BITS).max(1);
                for p in 0..u64::from(pages).min(max_pages) {
                    sys.touch_in(pid, VirtAddr(va.raw() + (p << PAGE_BITS)))
                        .expect("touching a mapped page");
                }
            }
            TenantOp::Depart { session } => {
                let t = slots[session as usize].take().expect("live session");
                sys.exit_process(t.pid).expect("live process");
                if let Some(id) = t.mapping {
                    sys.remove_mapping(id).expect("tenant owned the mapping");
                }
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    // Conservation after the drain: every chunk claimed was released.
    assert_eq!(
        sys.in_use_chunks(),
        0,
        "system churn left chunks in use after the drain"
    );
    assert_eq!(sys.chunks_claimed(), sys.chunks_released());
    assert_eq!(sys.process_count(), 1, "only the primordial process left");
    SystemRow {
        tenants,
        ops: applied,
        ops_per_s: applied as f64 / secs,
        chunks_claimed: sys.chunks_claimed(),
        chunks_released: sys.chunks_released(),
        processes_exited: sys.processes_exited(),
        page_faults: sys.page_faults(),
    }
}

fn bench_churn(c: &mut Criterion) {
    let (stream, sessions) = lower(ChurnConfig {
        tenants: 64,
        ops: 2048,
        mapping_cap: MAPPING_CAP,
        ..ChurnConfig::default()
    });
    let mut g = c.benchmark_group("churn");
    g.sample_size(10);
    g.bench_function("flat_ctl_64_tenants_2k", |b| {
        b.iter(|| black_box(drive_flat(&stream, sessions, false)))
    });
    g.bench_function("reference_ctl_64_tenants_2k", |b| {
        b.iter(|| black_box(drive_reference(&stream, sessions, false)))
    });
    g.finish();
}

/// Runs the scaling sweep, enforces the guards, writes
/// `BENCH_churn.json`.
fn record_churn() {
    let runs: usize = std::env::var("SDAM_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);

    let rows: Vec<ScaleRow> = [64usize, 512, 4096]
        .iter()
        .map(|&t| run_scale(t, runs))
        .collect();

    // The O(1) headline: flat ops/s must stay flat as tenants grow.
    let flat_64 = rows[0].flat_ops_per_s;
    let flat_4096 = rows[2].flat_ops_per_s;
    assert!(
        flat_4096 * 2.0 >= flat_64,
        "flat control plane degraded with tenant count: \
         {flat_64:.0} ops/s at 64 tenants vs {flat_4096:.0} at 4096"
    );

    let system = run_system_churn(64, 4096);

    let scaling: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"tenants\": {}, \"ctl_ops\": {}, \"flat_ops_per_s\": {:.0}, \
                 \"reference_ops_per_s\": {:.0}, \"flat_over_reference\": {:.2}, \
                 \"free_chunks_at_peak\": {}, \"max_contiguous_free_run\": {}, \
                 \"guard_chunks\": {}, \"stranded_pages\": {}}}",
                r.tenants,
                r.ctl_ops,
                r.flat_ops_per_s,
                r.reference_ops_per_s,
                r.flat_ops_per_s / r.reference_ops_per_s,
                r.frag.free_chunks,
                r.frag.max_contiguous_free_run,
                r.frag.guard_chunks,
                r.frag.stranded_pages,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"name\": \"control-plane-churn\",\n  \
         \"command\": \"cargo bench -p sdam-bench --bench churn\",\n  \
         \"workload\": \"seeded tenant lifecycle (arrive/malloc/touch/free/mmap/munmap/depart), {STEADY_OPS} steady ops, {MAPPING_CAP}-mapping pool, 8 GB in 2 MB chunks\",\n  \
         \"unit\": \"control-plane ops/s (block alloc/free incl. chunk claim/release)\",\n  \
         \"scaling\": [\n{}\n  ],\n  \
         \"flat_ops_per_s_4096_over_64\": {:.3},\n  \
         \"reference_ops_per_s_4096_over_64\": {:.3},\n  \
         \"system_churn\": {{\"tenants\": {}, \"ops\": {}, \"ops_per_s\": {:.0}, \
         \"chunks_claimed\": {}, \"chunks_released\": {}, \"processes_exited\": {}, \
         \"page_faults\": {}, \"in_use_after_drain\": 0}},\n  \
         \"golden_equivalence\": true,\n  \
         \"runs\": {runs},\n  \
         \"note\": \"Both allocators replay the identical lowered op stream; the checksum over every returned physical address plus error and claim/release counters must match exactly (asserted). The flat allocator keeps per-chunk state columns and per-(mapping,sensitivity) largest-free-order buckets, so alloc/free cost no longer grows with live tenants or group sizes; the guard asserts 4096-tenant ops/s stays within 2x of 64-tenant ops/s. Fragmentation (free-list length, longest contiguous free run) is read directly off the flat bitmap at peak occupancy. The system row replays the same lifecycle through SdamSystem end to end — spawn/exit, heap growth, demand paging, CMT writes, pid and mapping-id recycling — and asserts chunk conservation after the drain.\"\n}}\n",
        scaling.join(",\n"),
        flat_4096 / flat_64,
        rows[2].reference_ops_per_s / rows[0].reference_ops_per_s,
        system.tenants,
        system.ops,
        system.ops_per_s,
        system.chunks_claimed,
        system.chunks_released,
        system.processes_exited,
        system.page_faults,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_churn.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("churn scaling table written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_churn);

fn main() {
    record_churn();
    benches();
}
