//! Break-even benchmark for the adaptive remapping controller: the
//! phase-change stride workload of `examples/adaptive.rs` swept over
//! switch points, adaptive against both static mappings.
//!
//! Running this bench records the break-even table (simulated cycles
//! per switch point — deterministic, so the single run *is* the
//! median) plus wall-clock medians of the three drivers into
//! `BENCH_adapt.json`, and enforces the acceptance guards:
//!
//! * on the mid-run phase change the adaptive driver's end-to-end
//!   cycles — migration traffic included — must beat the best static
//!   mapping;
//! * `AdaptConfig::disabled()` must be bit-identical to `Machine::run`;
//! * the adaptive report must be bit-identical serial vs sharded.
//!
//! Any violation panics, so the CI adapt-bench step fails loudly.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use sdam_hbm::Geometry;
use sdam_mapping::descriptor::MappingDescriptor;
use sdam_mapping::{Cmt, MappingId};
use sdam_sys::{AdaptConfig, ExecutionReport, Machine, MachineConfig, MappingEngine};
use sdam_trace::Trace;
use sdam_workloads::phased::{Phased, StrideLoop};
use sdam_workloads::{Scale, Workload};

/// Footprint both phases wrap within: two 2 MB chunks.
const REGION: u64 = 4 << 20;
const LANES: u16 = 4;
const CHUNK_BITS: u32 = 21;
const ACCESSES: usize = 1 << 17;
/// The sweep's primary switch point (mid-run phase change).
const SWITCH: f64 = 0.5;

fn fresh_engine(geom: Geometry) -> MappingEngine {
    let mut cmt = Cmt::new(geom.addr_bits(), CHUNK_BITS);
    let perm = MappingDescriptor::new(geom)
        .channel_bits([11, 12, 13, 14, 15])
        .compile_windowed(CHUNK_BITS)
        .expect("the declared channel bits fit the chunk window");
    cmt.register(MappingId(1), &perm);
    MappingEngine::Chunked(cmt)
}

fn static_engine(geom: Geometry, id: MappingId) -> MappingEngine {
    let mut engine = fresh_engine(geom);
    let cmt = engine.as_chunked_mut().expect("engine is chunked");
    for chunk in 0..REGION >> CHUNK_BITS {
        cmt.assign_chunk(chunk, id).expect("chunk is in range");
    }
    engine
}

fn phase_trace(switch: f64) -> Trace {
    Phased::new(
        Box::new(StrideLoop::new(1, REGION, LANES)),
        Box::new(StrideLoop::new(32, REGION, LANES)),
        switch,
    )
    .generate(Scale {
        n: 1 << 14,
        accesses: ACCESSES,
        seed: 1,
    })
}

fn run_static(geom: Geometry, trace: &Trace, id: MappingId) -> ExecutionReport {
    let engine = static_engine(geom, id);
    Machine::new(MachineConfig::accelerator(), geom).run(trace, &engine)
}

fn run_adaptive(geom: Geometry, trace: &Trace, threads: usize) -> ExecutionReport {
    let mut engine = fresh_engine(geom);
    Machine::new(MachineConfig::accelerator(), geom).run_adaptive_with(
        trace,
        &mut engine,
        &AdaptConfig::default(),
        threads,
    )
}

fn bench_adapt(c: &mut Criterion) {
    let geom = Geometry::hbm2_8gb();
    let trace = phase_trace(SWITCH);
    let mut g = c.benchmark_group("adapt");
    g.sample_size(10);
    g.bench_function("adaptive_phase_change_128k", |b| {
        b.iter(|| black_box(run_adaptive(geom, &trace, 1)))
    });
    g.bench_function("static_identity_phase_change_128k", |b| {
        b.iter(|| black_box(run_static(geom, &trace, MappingId(0))))
    });
    g.finish();
}

/// Median wall-clock of `runs` calls to `f`, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut() -> ExecutionReport) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Runs the break-even sweep, enforces the three guards, and writes
/// `BENCH_adapt.json`.
fn record_break_even() {
    let geom = Geometry::hbm2_8gb();

    // Guard 1 (and the sweep): mid-run phase change — adaptive must
    // beat the best static end to end, migration cost included.
    let mut rows = Vec::new();
    for switch in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let trace = phase_trace(switch);
        let identity = run_static(geom, &trace, MappingId(0));
        let tuned = run_static(geom, &trace, MappingId(1));
        let adaptive = run_adaptive(geom, &trace, 1);
        let best_static = identity.cycles.min(tuned.cycles);
        if (switch - SWITCH).abs() < f64::EPSILON {
            assert!(
                adaptive.cycles < best_static,
                "adaptive ({}) must beat the best static mapping ({best_static}) \
                 on the mid-run phase change",
                adaptive.cycles
            );
        }
        rows.push(format!(
            "    {{\"switch\": {switch}, \"identity_cycles\": {}, \"tuned_cycles\": {}, \
             \"best_static_cycles\": {best_static}, \"adaptive_cycles\": {}, \
             \"migrations\": {}, \"migration_clocks\": {}, \"adaptive_wins\": {}}}",
            identity.cycles,
            tuned.cycles,
            adaptive.cycles,
            adaptive.adapt.migrations,
            adaptive.adapt.migration_clocks,
            adaptive.cycles < best_static,
        ));
    }

    // Guard 2: disabled is bit-identical to the plain driver.
    let trace = phase_trace(SWITCH);
    let mut m = Machine::new(MachineConfig::accelerator(), geom);
    let plain = m.run(&trace, &fresh_engine(geom));
    let mut e = fresh_engine(geom);
    let disabled = m.run_adaptive(&trace, &mut e, &AdaptConfig::disabled());
    assert_eq!(
        plain, disabled,
        "AdaptConfig::disabled() diverged from Machine::run"
    );

    // Guard 3: adaptive serial and sharded reports are bit-identical.
    let serial = run_adaptive(geom, &trace, 1);
    let sharded = run_adaptive(geom, &trace, 4);
    assert_eq!(serial, sharded, "adaptive sharded diverged from serial");

    let runs: usize = std::env::var("SDAM_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9)
        .max(1);
    for _ in 0..2 {
        black_box(run_adaptive(geom, &trace, 1));
    }
    let adaptive_ms = median_ms(runs, || run_adaptive(geom, &trace, 1));
    let static_ms = median_ms(runs, || run_static(geom, &trace, MappingId(0)));

    let json = format!(
        "{{\n  \"name\": \"adaptive-remapping-break-even\",\n  \
         \"command\": \"cargo bench -p sdam-bench --bench adapt\",\n  \
         \"workload\": \"phased stride-1 -> stride-32 over 4 MB, 4 lanes, {ACCESSES} accesses, accelerator machine\",\n  \
         \"unit\": \"simulated cycles (deterministic) and host ms\",\n  \
         \"break_even_table\": [\n{}\n  ],\n  \
         \"adaptive_wall_ms\": {adaptive_ms:.3},\n  \
         \"static_wall_ms\": {static_ms:.3},\n  \
         \"runs\": {runs},\n  \
         \"disabled_bit_identical\": true,\n  \
         \"serial_sharded_bit_identical\": true,\n  \
         \"note\": \"Cycle counts are simulation facts and fully deterministic, so one run per switch point is the median. The adaptive driver starts on the boot identity mapping, detects the stride-32 phase pinning both hot chunks to one channel (sustained conflict rate over few channels), and live-migrates them to the declared stride-32 mapping; its cycles include the detection windows and the injected migration traffic. 'adaptive_wins' flips at the break-even switch points: a very early or very late phase change leaves too little mismatched tail to amortize the migration. All three guards (adaptive beats best static at switch 0.5, disabled bit-identity, serial/sharded bit-identity) are asserted by this bench.\"\n}}\n",
        rows.join(",\n"),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adapt.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("adaptive break-even table written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_adapt);

fn main() {
    record_break_even();
    benches();
}
