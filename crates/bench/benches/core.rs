//! Before/after benchmark for the SoA request-arena core: the
//! arena-backed FR-FCFS drain (`ChannelSim::drain` through
//! `Hbm::run_open_loop_windowed`) against the preserved per-request
//! `BTreeMap` scheduler (`ChannelSim::drain_reference`) on the 32 K
//! mixed-address open-loop workload.
//!
//! Running this bench also records both medians into `BENCH_core.json`
//! at the workspace root and enforces the two acceptance guards:
//!
//! * the arena path must produce **bit-identical statistics** (makespan,
//!   per-channel row outcomes, everything in [`SimStats`]) to the
//!   reference scheduler, and
//! * its median latency for the 32 K run must stay under the 2 ms CI
//!   ceiling.
//!
//! Either violation panics, so the CI core-throughput-guard step fails
//! loudly.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use sdam_hbm::channel::ChannelSim;
use sdam_hbm::{DecodedAddr, Geometry, HardwareAddr, Hbm, SimStats, Timing};

const WINDOW: usize = 16;
const REQUESTS: u64 = 32_768;
/// Hard ceiling on the arena path's median latency, in milliseconds.
const CEILING_MS: f64 = 2.0;
/// The same 32 K run measured on the seed commit on this class of host,
/// before the arena rewrite (per-request structs, `BTreeMap`-of-queues
/// drain with O(n) removes, per-drain allocations). That code is gone,
/// so this is a frozen reference point, not re-measured per run; the
/// live `reference_ms` below re-measures the retained algorithmic
/// oracle instead.
const SEED_BASELINE_MS: f64 = 5.76;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 27)
}

/// The bench workload: 32 K line addresses uniformly mixed over the
/// device's full 33-bit space — row hits, misses, and conflicts on
/// every channel, so both schedulers exercise all their branches.
fn bench_addrs(geom: Geometry) -> Vec<DecodedAddr> {
    (0..REQUESTS)
        .map(|i| geom.decode(HardwareAddr(mix(i) & ((1 << 33) - 1))))
        .collect()
}

/// One full open-loop run through the arena fast path.
fn fast_run(geom: Geometry, addrs: &[DecodedAddr]) -> SimStats {
    let mut hbm = Hbm::new(geom, Timing::hbm2());
    hbm.run_open_loop_windowed(addrs.iter().copied(), WINDOW)
}

/// The pre-arena driver, reconstructed verbatim: the same bank hash and
/// per-channel push, but every channel drained by the retained
/// `drain_reference` oracle (the old `BTreeMap`-of-queues scheduler).
fn reference_run(geom: Geometry, addrs: &[DecodedAddr]) -> SimStats {
    let timing = Timing::hbm2();
    let probe = Hbm::new(geom, timing);
    let mut channels: Vec<ChannelSim> = (0..geom.num_channels())
        .map(|_| ChannelSim::new(geom.banks_per_channel()))
        .collect();
    let mut requests = 0u64;
    let mut makespan = 0u64;
    for &a in addrs {
        let a = probe.effective_addr(a);
        channels[a.channel as usize].push_rw(a, false, 0);
        requests += 1;
    }
    for ch in &mut channels {
        makespan = makespan.max(ch.drain_reference(WINDOW, &timing));
    }
    SimStats {
        requests,
        makespan,
        per_channel: channels.iter().map(|c| c.stats()).collect(),
        timing,
    }
}

fn bench_core(c: &mut Criterion) {
    let geom = Geometry::hbm2_8gb();
    let addrs = bench_addrs(geom);
    let mut g = c.benchmark_group("core");
    g.sample_size(10);
    g.bench_function("run_open_loop_32k", |b| {
        b.iter(|| black_box(fast_run(geom, &addrs)))
    });
    g.bench_function("run_open_loop_32k_reference", |b| {
        b.iter(|| black_box(reference_run(geom, &addrs)))
    });
    g.finish();
}

/// Median wall-clock of `runs` calls to `f`, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut() -> SimStats) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Measures both drivers, enforces the oracle-equality and latency
/// guards, and writes `BENCH_core.json`.
fn record_core_times() {
    let geom = Geometry::hbm2_8gb();
    let addrs = bench_addrs(geom);

    let fast = fast_run(geom, &addrs);
    let reference = reference_run(geom, &addrs);
    assert_eq!(
        fast, reference,
        "arena drain diverged from the drain_reference oracle on the bench workload"
    );

    // Honor the CI smoke knob the criterion shim uses, so the smoke run
    // stays cheap while a real bench run gets stable medians.
    let runs: usize = std::env::var("SDAM_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9)
        .max(1);
    // Warm both paths (allocator pools, clock ramp) so the medians match
    // what a steady-state criterion run sees.
    for _ in 0..2 {
        black_box(fast_run(geom, &addrs));
        black_box(reference_run(geom, &addrs));
    }
    let after_ms = median_ms(runs, || fast_run(geom, &addrs));
    let reference_ms = median_ms(runs.min(3), || reference_run(geom, &addrs));
    assert!(
        after_ms < CEILING_MS,
        "core open-loop median {after_ms:.3} ms breached the {CEILING_MS} ms ceiling"
    );

    let json = format!(
        "{{\n  \"name\": \"core-open-loop-throughput\",\n  \
         \"command\": \"cargo bench -p sdam-bench --bench core\",\n  \
         \"workload\": \"32768 uniformly mixed line addresses over the full 8 GB device, FR-FCFS window 16\",\n  \
         \"unit\": \"ms_per_32k_run\",\n  \
         \"before_seed_ms\": {SEED_BASELINE_MS},\n  \
         \"after_ms\": {after_ms:.3},\n  \
         \"speedup_vs_seed\": {:.1},\n  \
         \"reference_oracle_ms\": {reference_ms:.3},\n  \
         \"speedup_vs_oracle\": {:.1},\n  \
         \"requests_per_sec_after\": {:.0},\n  \
         \"runs\": {runs},\n  \
         \"bit_identical\": true,\n  \
         \"ceiling_ms\": {CEILING_MS},\n  \
         \"note\": \"'before_seed_ms' is the same 32 K open-loop run measured on the seed commit before the arena rewrite (per-request structs, BTreeMap-of-queues drain with O(n) removes, per-drain allocations); that code is gone, so the figure is frozen. 'reference_oracle_ms' is re-measured live each run: the retained drain_reference scheduler (definitional windowed scan with tombstones) driven over the same bank hash and channel fan-out — it already sits on the arena's column storage, so it understates the seed gap. 'after_ms' is the SoA request-arena drain (column-major request storage, intrusive per-bank index lists, generation-stamped row table, one shared DrainScratch) behind Hbm::run_open_loop_windowed. Both guards (SimStats bit-equality against the oracle, the {CEILING_MS} ms median ceiling) are asserted by this bench.\"\n}}\n",
        SEED_BASELINE_MS / after_ms,
        reference_ms / after_ms,
        REQUESTS as f64 / (after_ms / 1e3),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_core.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("core open-loop medians written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_core);

fn main() {
    record_core_times();
    benches();
}
