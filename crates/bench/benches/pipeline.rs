//! Criterion benches for the end-to-end pipeline: a full
//! profile → select → allocate → execute run at tiny scale, per
//! configuration family.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdam::{pipeline, profiling, Experiment, SystemConfig};
use sdam_workloads::datacopy::DataCopy;

fn bench_end_to_end(c: &mut Criterion) {
    let exp = Experiment::quick();
    let w = DataCopy::new(vec![1, 16]);
    let mut g = c.benchmark_group("end_to_end_datacopy");
    g.sample_size(10);
    for config in [
        SystemConfig::BsDm,
        SystemConfig::BsHm,
        SystemConfig::SdmBsm,
        SystemConfig::SdmBsmMl { clusters: 4 },
    ] {
        g.bench_function(config.to_string(), |b| {
            b.iter(|| black_box(pipeline::run(&w, config, &exp)))
        });
    }
    g.finish();
}

fn bench_profiling_pass(c: &mut Criterion) {
    let exp = Experiment::quick();
    let w = DataCopy::new(vec![1, 16]);
    let mut g = c.benchmark_group("profiling");
    g.sample_size(10);
    g.bench_function("two_pass_profile", |b| {
        b.iter(|| black_box(profiling::profile_on_baseline(&w, &exp)))
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end, bench_profiling_pass);
criterion_main!(benches);
