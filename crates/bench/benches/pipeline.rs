//! Criterion benches for the end-to-end pipeline: a full
//! profile → select → allocate → execute run at tiny scale, per
//! configuration family, plus a per-stage breakdown of the staged
//! pipeline.
//!
//! Running this bench also records one staged run's [`PhaseTimes`] per
//! configuration into `BENCH_stages.json` at the workspace root, so the
//! per-stage cost split is tracked alongside the criterion numbers.

use criterion::{black_box, criterion_group, Criterion};
use sdam::stage::{standard_stages, RunContext, StageCache};
use sdam::{pipeline, profiling, Experiment, SystemConfig};
use sdam_workloads::datacopy::DataCopy;

fn bench_end_to_end(c: &mut Criterion) {
    let exp = Experiment::quick();
    let w = DataCopy::new(vec![1, 16]);
    let mut g = c.benchmark_group("end_to_end_datacopy");
    g.sample_size(10);
    for config in [
        SystemConfig::BsDm,
        SystemConfig::BsHm,
        SystemConfig::SdmBsm,
        SystemConfig::SdmBsmMl { clusters: 4 },
    ] {
        g.bench_function(config.to_string(), |b| {
            b.iter(|| black_box(pipeline::run(&w, config, &exp)))
        });
    }
    g.finish();
}

fn bench_profiling_pass(c: &mut Criterion) {
    let exp = Experiment::quick();
    let w = DataCopy::new(vec![1, 16]);
    let mut g = c.benchmark_group("profiling");
    g.sample_size(10);
    g.bench_function("two_pass_profile", |b| {
        b.iter(|| black_box(profiling::profile_on_baseline(&w, &exp)))
    });
    g.finish();
}

/// Per-stage cost of the staged pipeline, with a warm artifact cache
/// (steady state of a sweep): profile/select measure the cache-hit
/// path, alloc/execute the real per-run work.
fn bench_stage_breakdown(c: &mut Criterion) {
    let exp = Experiment::quick();
    let w = DataCopy::new(vec![1, 16]);
    let config = SystemConfig::SdmBsmMl { clusters: 4 };
    let cache = StageCache::new();
    let stages = standard_stages();
    {
        // Warm the cache so profile/select measure the steady state.
        let mut ctx = RunContext::new(&w, config, &exp, &cache);
        for s in &stages {
            s.run(&mut ctx).expect("warm-up run succeeds");
        }
    }
    let mut g = c.benchmark_group("pipeline_stages");
    g.sample_size(10);
    for (i, stage) in stages.iter().enumerate() {
        g.bench_function(stage.name(), |b| {
            b.iter_batched(
                || {
                    let mut ctx = RunContext::new(&w, config, &exp, &cache);
                    for s in &stages[..i] {
                        s.run(&mut ctx).expect("prefix stages succeed");
                    }
                    ctx
                },
                |mut ctx| {
                    stage.run(&mut ctx).expect("stage succeeds");
                    black_box(ctx.phases)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Runs the staged pipeline once per configuration and writes the
/// recorded per-stage [`sdam::PhaseTimes`] to `BENCH_stages.json` at
/// the workspace root.
fn record_stage_times() {
    let exp = Experiment::quick();
    let w = DataCopy::new(vec![1, 16]);
    let cache = StageCache::new();
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut rows = Vec::new();
    for config in [
        SystemConfig::BsDm,
        SystemConfig::BsBsm,
        SystemConfig::BsHm,
        SystemConfig::SdmBsm,
        SystemConfig::SdmBsmMl { clusters: 4 },
        SystemConfig::SdmBsmDl { clusters: 4 },
    ] {
        let r = match pipeline::try_run_with_cache(&w, config, &exp, None, &cache) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("stage-time recording failed for {config}: {e}");
                return;
            }
        };
        let p = r.phases;
        rows.push(format!(
            "    {{ \"config\": \"{config}\", \"profile_ms\": {:.3}, \"select_ms\": {:.3}, \
             \"materialize_ms\": {:.3}, \"execute_ms\": {:.3}, \"total_ms\": {:.3} }}",
            ms(p.profile),
            ms(p.select),
            ms(p.materialize),
            ms(p.execute),
            ms(p.total()),
        ));
    }
    let json = format!
(
        "{{\n  \"name\": \"staged-pipeline-phase-times\",\n  \"command\": \"cargo bench -p sdam-bench --bench pipeline\",\n  \"workload\": \"datacopy strides [1, 16], tiny scale\",\n  \"note\": \"one staged run per configuration on a shared StageCache: the first profiled configuration pays the profiling pass, later ones hit the cache (profile_ms ~ 0)\",\n  \"cache\": {{ \"profile_misses\": {}, \"profile_hits\": {}, \"selection_misses\": {}, \"selection_hits\": {}, \"embedding_misses\": {}, \"embedding_hits\": {} }},\n  \"stage_times\": [\n{}\n  ]\n}}\n",
        cache.profile_misses(),
        cache.profile_hits(),
        cache.selection_misses(),
        cache.selection_hits(),
        cache.embedding_misses(),
        cache.embedding_hits(),
        rows.join(",\n"),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stages.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("per-stage phase times written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_profiling_pass,
    bench_stage_breakdown
);

fn main() {
    record_stage_times();
    benches();
}
