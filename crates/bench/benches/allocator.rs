//! Criterion benches for the allocation stack: multi-heap malloc,
//! chunk-group page allocation, and the demand-paging fault path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdam::SdamSystem;
use sdam_hbm::Geometry;
use sdam_mapping::MappingId;
use sdam_mem::heap::MultiHeapMalloc;
use sdam_mem::phys::ChunkAllocator;
use sdam_mem::VirtAddr;

fn bench_malloc(c: &mut Criterion) {
    c.bench_function("malloc_free_1k_mixed_mappings", |b| {
        b.iter(|| {
            let mut m = MultiHeapMalloc::new(12);
            let m1 = m.add_addr_map().unwrap();
            let m2 = m.add_addr_map().unwrap();
            let mut ptrs = Vec::with_capacity(1000);
            for i in 0..1000u64 {
                let id = if i % 2 == 0 { m1 } else { m2 };
                ptrs.push(m.malloc(64 + i % 512, Some(id)).unwrap());
            }
            for p in ptrs {
                m.free(p).unwrap();
            }
            black_box(m.heap_regions().len())
        })
    });
}

fn bench_chunk_alloc(c: &mut Criterion) {
    c.bench_function("chunk_alloc_free_4_groups_2k_pages", |b| {
        b.iter(|| {
            let mut a = ChunkAllocator::new(30, 21, 12);
            let mut frames = Vec::with_capacity(2048);
            for i in 0..2048u32 {
                frames.push(a.alloc_page(MappingId((i % 4) as u8)).unwrap().pa);
            }
            for f in frames {
                a.free_block(f).unwrap();
            }
            black_box(a.free_chunk_count())
        })
    });
}

fn bench_fault_path(c: &mut Criterion) {
    c.bench_function("sdam_system_fault_512_pages", |b| {
        b.iter(|| {
            let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
            let perm = sys.permutation_for_stride(16);
            let id = sys.add_mapping(&perm).unwrap();
            let va = sys.malloc(512 * 4096, Some(id)).unwrap();
            for i in 0..512u64 {
                black_box(sys.touch(VirtAddr(va.raw() + i * 4096)).unwrap());
            }
            black_box(sys.page_faults())
        })
    });
}

criterion_group!(benches, bench_malloc, bench_chunk_alloc, bench_fault_path);
criterion_main!(benches);
