//! Before/after benchmark for the DL-assisted clustering rewrite: the
//! batched, deduplicated, early-stopped training loop
//! (`cluster_variables_dl`) against the preserved per-step reference
//! oracle (`cluster_variables_dl_reference`) on the bench workload the
//! staged pipeline uses (datacopy strides [1, 16], tiny scale).
//!
//! Running this bench also records both medians into `BENCH_ml.json` at
//! the workspace root and enforces the two acceptance guards:
//!
//! * the fast path must select the **same cluster partition** (up to
//!   cluster relabeling) as the reference loop, and
//! * its median selection latency must stay under the 50 ms CI
//!   ceiling.
//!
//! Either violation panics, so the CI bench-smoke step fails loudly.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use sdam::{profiling, Experiment};
use sdam_ml::dlkmeans::{cluster_variables_dl, cluster_variables_dl_reference, DlClustering};
use sdam_workloads::datacopy::DataCopy;

const CLUSTERS: usize = 4;
/// Hard ceiling on the fast path's median latency, in milliseconds.
const CEILING_MS: f64 = 50.0;

/// The per-variable physical-address traces the DL selector trains on.
fn bench_traces() -> (Vec<Vec<u64>>, Experiment) {
    let exp = Experiment::quick();
    let w = DataCopy::new(vec![1, 16]);
    let data = profiling::profile_on_baseline(&w, &exp);
    let traces = data
        .major
        .iter()
        .map(|v| data.pa_streams[v].clone())
        .collect();
    (traces, exp)
}

/// Relabels cluster ids in first-appearance order so two clusterings
/// compare equal iff they induce the same partition.
fn canonical(assignments: &[usize]) -> Vec<usize> {
    let mut map = std::collections::HashMap::new();
    assignments
        .iter()
        .map(|&c| {
            let next = map.len();
            *map.entry(c).or_insert(next)
        })
        .collect()
}

fn bench_dl_select(c: &mut Criterion) {
    let (traces, exp) = bench_traces();
    let bits = exp.geometry.addr_bits();
    let mut g = c.benchmark_group("dl_select");
    g.sample_size(10);
    g.bench_function("fast", |b| {
        b.iter(|| black_box(cluster_variables_dl(&traces, bits, CLUSTERS, &exp.training)))
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            black_box(cluster_variables_dl_reference(
                &traces,
                bits,
                CLUSTERS,
                &exp.training,
            ))
        })
    });
    g.finish();
}

/// Median wall-clock of `runs` calls to `f`, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut() -> DlClustering) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Measures both paths, enforces the partition-equality and latency
/// guards, and writes `BENCH_ml.json`.
fn record_ml_times() {
    let (traces, exp) = bench_traces();
    let bits = exp.geometry.addr_bits();

    let fast = cluster_variables_dl(&traces, bits, CLUSTERS, &exp.training);
    let reference = cluster_variables_dl_reference(&traces, bits, CLUSTERS, &exp.training);
    assert_eq!(
        canonical(&fast.assignments),
        canonical(&reference.assignments),
        "fast DL path selected a different cluster partition than the reference \
         (fast {:?} vs reference {:?})",
        fast.assignments,
        reference.assignments,
    );

    // Honor the CI smoke knob the criterion shim uses, so the smoke run
    // stays cheap while a real bench run gets stable medians.
    let runs: usize = std::env::var("SDAM_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9)
        .max(1);
    let fast_ms = median_ms(runs, || {
        cluster_variables_dl(&traces, bits, CLUSTERS, &exp.training)
    });
    let ref_ms = median_ms(runs, || {
        cluster_variables_dl_reference(&traces, bits, CLUSTERS, &exp.training)
    });
    // The pre-rewrite selection path: the per-step reference loop on the
    // preset laptop() shipped before this optimization (the 473 ms hot
    // spot). Re-measured here so `before` tracks this host, not a
    // number frozen in a doc.
    let old_preset = sdam_ml::TrainingConfig {
        hidden_dim: 24,
        embedding_dim: 12,
        steps: 300,
        seq_len: 16,
        patience: 0,
        min_delta: 0.0,
        ..exp.training.clone()
    };
    let before_ms = median_ms(runs.min(3), || {
        cluster_variables_dl_reference(&traces, bits, CLUSTERS, &old_preset)
    });
    assert!(
        fast_ms < CEILING_MS,
        "DL selection median {fast_ms:.1} ms breached the {CEILING_MS} ms ceiling"
    );

    let json = format!(
        "{{\n  \"name\": \"dl-clustering-selection-latency\",\n  \
         \"command\": \"cargo bench -p sdam-bench --bench ml\",\n  \
         \"workload\": \"datacopy strides [1, 16], tiny scale, k=4, laptop() training preset\",\n  \
         \"unit\": \"ms_per_selection\",\n  \
         \"before_ms\": {before_ms:.2},\n  \
         \"after_fast_ms\": {fast_ms:.2},\n  \
         \"speedup\": {:.1},\n  \
         \"reference_same_preset_ms\": {ref_ms:.2},\n  \
         \"runs\": {runs},\n  \
         \"train_steps\": {{ \"fast\": {}, \"reference\": {} }},\n  \
         \"partition_identical\": true,\n  \
         \"ceiling_ms\": {CEILING_MS},\n  \
         \"note\": \"'before' is the pre-rewrite selection path re-measured on this host: the per-step reference loop on the old laptop() preset (hidden=24/emb=12/seq=16/steps=300, no early stop) — the 473 ms hot spot. 'after' is the deduplicated, batched, early-stopped loop on the retuned preset (hidden=12/emb=8/seq=8/steps<=64, patience=3). 'reference_same_preset_ms' isolates the loop rewrite at equal hyper-parameters. The ~5 ms target was not reachable without changing the selected partition — the preset is the smallest whose fast loop still matches the reference partition; both guards (partition equality, {CEILING_MS} ms ceiling) are asserted by this bench.\"\n}}\n",
        before_ms / fast_ms,
        fast.train_steps,
        reference.train_steps,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ml.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("DL selection medians written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_dl_select);

fn main() {
    record_ml_times();
    benches();
}
