//! Criterion benches for the address-mapping datapath: the AMU crossbar
//! (bit shuffle), the XOR hash, and the two-level CMT lookup.
//!
//! The paper's latency argument (§5.3) is that the CMT + AMU path is
//! negligible next to the >130 ns HBM access; these benches put numbers
//! on our model's software datapath.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdam_hbm::Geometry;
use sdam_mapping::{
    select, AddressMapping, BitPermutation, Cmt, HashMapping, IdentityMapping, MappingId, PhysAddr,
};

fn bench_mappings(c: &mut Criterion) {
    let geom = Geometry::hbm2_8gb();
    let identity = IdentityMapping;
    let shuffle = select::shuffle_for_stride(16, geom);
    let hash = HashMapping::for_geometry(geom);
    let addrs: Vec<PhysAddr> = (0..1024u64).map(|i| PhysAddr(i * 4096 + 64)).collect();

    let mut g = c.benchmark_group("map_1k_addrs");
    g.bench_function("identity", |b| {
        b.iter(|| {
            for &a in &addrs {
                black_box(identity.map(a));
            }
        })
    });
    g.bench_function("bit_shuffle", |b| {
        b.iter(|| {
            for &a in &addrs {
                black_box(shuffle.map(a));
            }
        })
    });
    g.bench_function("xor_hash", |b| {
        b.iter(|| {
            for &a in &addrs {
                black_box(hash.map(a));
            }
        })
    });
    g.finish();
}

fn bench_cmt(c: &mut Criterion) {
    let mut cmt = Cmt::new(33, 21);
    let mut table: Vec<u32> = (0..15).collect();
    table.swap(0, 5);
    cmt.register(MappingId(1), &BitPermutation::new(6, table).unwrap());
    for chunk in 0..cmt.num_chunks() {
        if chunk % 2 == 0 {
            cmt.assign_chunk(chunk, MappingId(1)).unwrap();
        }
    }
    let addrs: Vec<PhysAddr> = (0..1024u64)
        .map(|i| PhysAddr(i * 1_000_003 % (1 << 33)))
        .collect();
    c.bench_function("cmt_translate_1k", |b| {
        b.iter(|| {
            for &a in &addrs {
                black_box(cmt.translate(a));
            }
        })
    });
}

criterion_group!(benches, bench_mappings, bench_cmt);
criterion_main!(benches);
