//! Before/after microbenchmarks for the three hot-loop rewrites: the
//! table-driven translation datapath, the bit-sliced BFRV profiler, and
//! the indexed FR-FCFS drain. Every "new" routine is benched against
//! the preserved reference oracle it replaced (`apply_reference`,
//! `from_addrs_scalar`, `drain_reference`), so one run produces the
//! speedup table recorded in `BENCH_hotpath.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdam_hbm::channel::ChannelSim;
use sdam_hbm::{DecodedAddr, Geometry, Hbm, Timing};
use sdam_mapping::{BitFlipRateVector, BitPermutation, Cmt, CmtLookupCache, MappingId, PhysAddr};

/// Deterministic 64-bit mixer (splitmix-style) for address streams.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 27)
}

fn bench_translate(c: &mut Criterion) {
    // A 21-bit window (the widest the CMT accepts) exercises all three
    // byte LUTs of the table-driven path.
    let n = 21u32;
    let table: Vec<u32> = (0..n).map(|i| (i + 7) % n).collect();
    let perm = BitPermutation::new(6, table).unwrap();
    let addrs: Vec<u64> = (0..1024u64).map(mix).collect();

    let mut g = c.benchmark_group("translate_1k");
    g.bench_function("lut", |b| {
        b.iter(|| {
            for &a in &addrs {
                black_box(perm.apply(a));
            }
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            for &a in &addrs {
                black_box(perm.apply_reference(a));
            }
        })
    });
    g.finish();

    // The full CMT path (chunk lookup + memo + AMU) on a chunk-local
    // stream, where the single-entry memo hits almost always.
    let mut cmt = Cmt::new(33, 22);
    cmt.register(
        MappingId(0),
        &BitPermutation::new(6, (0..16).collect()).unwrap(),
    );
    let rot: Vec<u32> = (0..16).map(|i| (i + 5) % 16).collect();
    cmt.register(MappingId(1), &BitPermutation::new(6, rot).unwrap());
    for chunk in 0..cmt.num_chunks() {
        cmt.assign_chunk(chunk, MappingId((chunk % 2) as u8))
            .unwrap();
    }
    let pas: Vec<PhysAddr> = (0..1024u64)
        .map(|i| PhysAddr(mix(i) & ((1 << 33) - 1)))
        .collect();
    c.bench_function("cmt_translate_cached_1k", |b| {
        b.iter(|| {
            let mut cache = CmtLookupCache::default();
            for &pa in &pas {
                black_box(cmt.translate_cached(pa, &mut cache));
            }
        })
    });
}

fn bench_bfrv(c: &mut Criterion) {
    let addrs: Vec<u64> = (0..65_536u64).map(mix).collect();
    let width = 33;
    let mut g = c.benchmark_group("bfrv_64k");
    g.bench_function("bitsliced", |b| {
        b.iter(|| black_box(BitFlipRateVector::from_addrs(addrs.iter().copied(), width)))
    });
    g.bench_function("scalar", |b| {
        b.iter(|| {
            black_box(BitFlipRateVector::from_addrs_scalar(
                addrs.iter().copied(),
                width,
            ))
        })
    });
    g.finish();
}

fn bench_drain(c: &mut Criterion) {
    // A mixed stream over 16 banks with enough row locality that the
    // FR-FCFS window actually reorders: the scan-based reference pays
    // O(window) per pick, the indexed drain O(1) amortized.
    let timing = Timing::hbm2();
    let banks = 16usize;
    let mut loaded = ChannelSim::new(banks);
    for i in 0..8_192u64 {
        let r = mix(i);
        loaded.push(
            DecodedAddr {
                row: (r >> 8) % 64,
                bank: r % banks as u64,
                channel: 0,
                col: (r >> 16) % 4,
            },
            0,
        );
    }
    let mut g = c.benchmark_group("drain_8k_w64");
    g.bench_function("indexed", |b| {
        b.iter(|| {
            let mut ch = loaded.clone();
            black_box(ch.drain(64, &timing))
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut ch = loaded.clone();
            black_box(ch.drain_reference(64, &timing))
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Whole-device open loop: decode + bank hash + per-channel drains.
    let geom = Geometry::hbm2_8gb();
    let addrs: Vec<DecodedAddr> = (0..32_768u64)
        .map(|i| geom.decode(sdam_hbm::HardwareAddr(mix(i) & ((1 << 33) - 1))))
        .collect();
    c.bench_function("run_open_loop_32k", |b| {
        b.iter(|| {
            let mut hbm = Hbm::new(geom, Timing::hbm2());
            black_box(hbm.run_open_loop(addrs.iter().copied()))
        })
    });
}

criterion_group!(
    benches,
    bench_translate,
    bench_bfrv,
    bench_drain,
    bench_end_to_end
);
criterion_main!(benches);
