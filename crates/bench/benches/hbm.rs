//! Criterion benches for the HBM simulator: open-loop streams at the
//! two extremes (streaming vs channel-pinned) and the closed-loop
//! in-order path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdam_hbm::{Geometry, HardwareAddr, Hbm, Timing};

fn stride_stream(geom: Geometry, stride: u64, n: u64) -> Vec<sdam_hbm::DecodedAddr> {
    (0..n)
        .map(|i| geom.decode(HardwareAddr(i * stride * 64)))
        .collect()
}

fn bench_open_loop(c: &mut Criterion) {
    let geom = Geometry::hbm2_8gb();
    let streaming = stride_stream(geom, 1, 16_384);
    let pinned = stride_stream(geom, 32, 16_384);

    let mut g = c.benchmark_group("open_loop_16k");
    g.bench_function("stride1", |b| {
        b.iter(|| {
            let mut hbm = Hbm::new(geom, Timing::hbm2());
            black_box(hbm.run_open_loop(streaming.iter().copied()))
        })
    });
    g.bench_function("stride32_pinned", |b| {
        b.iter(|| {
            let mut hbm = Hbm::new(geom, Timing::hbm2());
            black_box(hbm.run_open_loop(pinned.iter().copied()))
        })
    });
    g.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let geom = Geometry::hbm2_8gb();
    let stream = stride_stream(geom, 3, 16_384);
    c.bench_function("in_order_service_16k", |b| {
        b.iter(|| {
            let mut hbm = Hbm::new(geom, Timing::hbm2());
            let mut t = 0;
            for &a in &stream {
                t = hbm.service(a, t);
            }
            black_box(t)
        })
    });
}

criterion_group!(benches, bench_open_loop, bench_closed_loop);
criterion_main!(benches);
