//! Reverse-engineering bench: probes-to-recovery over the seeded
//! mapping suite.
//!
//! The figure of merit is *probes per recovered bit* — how many timed
//! accesses the black-box agent needs before the mapping function is
//! pinned down exactly. Running this bench sweeps every seeded target
//! (direct-mapped fold, global channel hashes, SDAM AMU windows),
//! records per-target probe counts against the committed CI ceilings
//! into `BENCH_probe.json`, and enforces the acceptance guards:
//!
//! * every recovery is *exact* against ground truth (checked through
//!   `Cmt::translate_under` / canonical-gauge comparison — APIs the
//!   agent itself can never reach);
//! * every probe count stays under its committed ceiling, so a
//!   regression in the protocol's probe budget fails loudly;
//! * validation confidence is 1.0 on every function.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use sdam::probing::seeded_suite;

struct Row {
    target: &'static str,
    function: String,
    probes: u64,
    ceiling: u64,
    bits: u32,
    confidence: f64,
    hit: u64,
    closed: u64,
    separable: bool,
    secs: f64,
}

/// Runs the sweep, enforces the guards, writes `BENCH_probe.json`.
fn record_probe() {
    let runs: usize = std::env::var("SDAM_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let suite = seeded_suite().expect("suite definition must compile");
    let mut rows = Vec::with_capacity(suite.len());
    for entry in &suite {
        let start = Instant::now();
        let mut report = None;
        for _ in 0..runs {
            report = Some(entry.run(1).expect("seeded recovery must succeed"));
        }
        let secs = start.elapsed().as_secs_f64() / runs as f64;
        let report = report.expect("runs >= 1");
        assert!(
            report.all_exact(),
            "{}: recovery not exact: {}",
            entry.name,
            report.to_json()
        );
        assert!(
            report.total_probes() <= entry.probe_ceiling(),
            "{}: {} probes exceed the committed ceiling of {}",
            entry.name,
            report.total_probes(),
            entry.probe_ceiling()
        );
        for f in &report.functions {
            assert!(
                f.confidence >= 0.999,
                "{}: {} validated at only {}",
                entry.name,
                f.function,
                f.confidence
            );
            rows.push(Row {
                target: entry.name,
                function: f.function.clone(),
                probes: f.probes,
                ceiling: entry.probe_ceiling(),
                bits: f.bits,
                confidence: f.confidence,
                hit: report.calibration.hit_latency(),
                closed: report.calibration.closed_latency(),
                separable: report.calibration.separable(),
                secs,
            });
        }
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"target\": \"{}\", \"function\": \"{}\", \"probes\": {}, \
                 \"ceiling\": {}, \"bits\": {}, \"probes_per_bit\": {:.1}, \
                 \"confidence\": {:.4}, \"hit\": {}, \"closed\": {}, \
                 \"separable\": {}, \"exact\": true, \"secs\": {:.4}}}",
                r.target,
                r.function,
                r.probes,
                r.ceiling,
                r.bits,
                r.probes as f64 / r.bits.max(1) as f64,
                r.confidence,
                r.hit,
                r.closed,
                r.separable,
                r.secs,
            )
        })
        .collect();
    let total: u64 = rows.iter().map(|r| r.probes).sum();

    let json = format!(
        "{{\n  \"name\": \"mapping-recovery\",\n  \
         \"command\": \"cargo bench -p sdam-bench --bench probe\",\n  \
         \"workload\": \"black-box reverse engineering of the seeded mapping suite (hbm2_8gb, refresh on, 21-bit chunks) from ProbeTarget::access latencies only\",\n  \
         \"unit\": \"probes to exact recovery (lower is better)\",\n  \
         \"targets\": [\n{}\n  ],\n  \
         \"total_probes\": {total},\n  \
         \"runs\": {runs},\n  \
         \"note\": \"The agent sees one opaque trait method returning a latency; it classifies pair experiments with an online-trained calibrator, solves channel-hash source sets by GF(2) elimination, and labels AMU window bits by single-flip and anchor-pair probing. Every recovery is verified exact against privileged ground truth (translate_under / canonical gauge) after the fact, and probe counts are asserted under the committed CI ceilings.\"\n}}\n",
        body.join(",\n"),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("probes-to-recovery table written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn bench_probe(c: &mut Criterion) {
    let suite = seeded_suite().expect("suite definition must compile");
    let fold = suite.iter().find(|e| e.name == "dm-identity").unwrap();
    let window = suite.iter().find(|e| e.name == "sdam-reverse").unwrap();
    let mut g = c.benchmark_group("probe");
    g.sample_size(10);
    g.bench_function("recover_bank_fold", |b| {
        b.iter(|| black_box(fold.run(1).unwrap()))
    });
    g.bench_function("recover_amu_window", |b| {
        b.iter(|| black_box(window.run(1).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_probe);

fn main() {
    record_probe();
    benches();
}
