//! The reverse-engineering suite: ground-truthed targets for the
//! black-box probing agent in [`sdam_probe`].
//!
//! The agent only ever sees a [`sdam_probe::ProbeTarget`] — timed
//! accesses through the real CMT→AMU→bank-hash→FR-FCFS path. This
//! module is the *harness* around it: it builds targets whose mapping
//! functions are known (a direct-mapped device, global
//! [`HashMapping`]s, and full [`SdamSystem`]s with registered AMU
//! windows), runs a recovery, and only *then* compares the result
//! against ground truth fetched through the privileged APIs
//! ([`Cmt::translate_under`], [`BitPermutation::invert`]) the agent
//! cannot reach.
//!
//! Recovered functions are compared in the **timing-canonical gauge**
//! (see [`sdam_mapping::timing_classes`]): timing experiments cannot
//! distinguish two mappings that permute bits within one latency class,
//! so both sides are canonicalised before the equality check.

use std::fmt;

use sdam_hbm::{Geometry, Timing};
use sdam_mapping::descriptor::MappingDescriptor;
use sdam_mapping::{BitPermutation, Cmt, HashMapping, MappingId, PhysAddr};
use sdam_mem::VirtAddr;
use sdam_probe::{Agent, FunctionReport, RecoveryError, RecoveryReport, TargetFactory};
use sdam_sys::{EngineTarget, MappingEngine};

use crate::system::SdamSystem;

/// Committed probe-count ceiling for a bank-fold recovery (CI guard;
/// measured ≈ 131 on `hbm2_8gb`).
pub const PROBE_CEILING_FOLD: u64 = 256;
/// Committed probe-count ceiling for a channel-hash recovery (CI
/// guard; measured ≈ 1 300 on `hbm2_8gb`).
pub const PROBE_CEILING_HASH: u64 = 1_600;
/// Committed probe-count ceiling for an AMU window recovery (CI guard;
/// measured ≈ 400 for the 15-bit window).
pub const PROBE_CEILING_WINDOW: u64 = 600;

/// Errors from building suite targets or running recoveries on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbingError {
    /// The harness could not construct the target (allocator, mapping
    /// registration, or an allocation that is not XOR-closed).
    Setup(String),
    /// The black-box agent failed — forwarded [`RecoveryError`].
    Recovery(RecoveryError),
}

impl fmt::Display for ProbingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbingError::Setup(msg) => write!(f, "probe harness setup failed: {msg}"),
            ProbingError::Recovery(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl std::error::Error for ProbingError {}

impl From<RecoveryError> for ProbingError {
    fn from(e: RecoveryError) -> Self {
        ProbingError::Recovery(e)
    }
}

/// What the harness knows about a suite target — the ground truth the
/// agent must reproduce without ever seeing it.
#[derive(Debug, Clone)]
pub enum SuiteTruth {
    /// Direct-mapped device: the only structure is the controller's
    /// bank hash (row XOR-folded into the bank), recovered as fold
    /// classes.
    Fold,
    /// A global channel hash; the agent must recover its source sets
    /// (compared in the canonical gauge).
    Hash(HashMapping),
    /// An AMU [`BitPermutation`] registered in a real [`SdamSystem`];
    /// truth is re-derived through [`Cmt::translate_under`], not taken
    /// from this field.
    Window(BitPermutation),
}

/// One ground-truthed reverse-engineering target.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Stable name (keys the golden fixture and the bench JSON).
    pub name: &'static str,
    /// The hidden mapping function.
    pub truth: SuiteTruth,
    /// Device geometry.
    pub geom: Geometry,
    /// Device timing.
    pub timing: Timing,
    /// Chunk size for [`SuiteTruth::Window`] entries (AMU window is
    /// `[line_bits, chunk_bits)`).
    pub chunk_bits: u32,
}

/// An XOR-closed physical window onto a live [`SdamSystem`] allocation.
///
/// Built by [`sdam_probe_region`]: the region's pages were faulted in
/// through the real demand-paging path, and every page landed at
/// `base_pa | offset` — so the agent's probe offsets *are* physical
/// address deltas, which is what the pair protocol's GF(2) linearity
/// needs.
#[derive(Debug, Clone)]
pub struct SdamProbeRegion {
    cmt: Cmt,
    id: MappingId,
    base_pa: u64,
    probe_bits: u32,
    chunk_bits: u32,
    geom: Geometry,
    timing: Timing,
}

impl SdamProbeRegion {
    /// Physical base of the probe window.
    pub fn base_pa(&self) -> u64 {
        self.base_pa
    }

    /// Width of the probe window in bits.
    pub fn probe_bits(&self) -> u32 {
        self.probe_bits
    }

    /// A factory producing fresh black-box targets over this region:
    /// each target routes probes through a clone of the live CMT (the
    /// `Chunked` engine) into a fresh device.
    pub fn factory(&self) -> impl TargetFactory + '_ {
        move || {
            EngineTarget::new(
                MappingEngine::Chunked(self.cmt.clone()),
                self.geom,
                self.timing,
                self.base_pa,
                self.probe_bits,
            )
        }
    }

    /// Ground truth for the region's AMU window, re-derived bit by bit
    /// through the privileged [`Cmt::translate_under`] — the API the
    /// agent never calls. Raw (not canonicalised).
    pub fn window_truth(&self) -> Result<BitPermutation, ProbingError> {
        let lo = self.geom.line_bits();
        let len = self.chunk_bits - lo;
        let translate = |pa: u64| -> Result<u64, ProbingError> {
            self.cmt
                .translate_under(self.id, PhysAddr(pa))
                .map(|ha| ha.0)
                .map_err(|e| ProbingError::Setup(format!("translate_under: {e}")))
        };
        let base = translate(self.base_pa)?;
        let mut table = vec![u32::MAX; len as usize];
        for i in 0..len {
            let delta = translate(self.base_pa | (1u64 << (lo + i)))? ^ base;
            if delta.count_ones() != 1 {
                return Err(ProbingError::Setup(format!(
                    "CMT image of window bit {} is not a single bit: {delta:#x}",
                    lo + i
                )));
            }
            let dest = delta.trailing_zeros();
            if dest < lo || dest >= lo + len {
                return Err(ProbingError::Setup(format!(
                    "CMT routed window bit {} outside the window, to bit {dest}",
                    lo + i
                )));
            }
            table[(dest - lo) as usize] = i;
        }
        BitPermutation::new(lo, table)
            .map_err(|e| ProbingError::Setup(format!("derived truth table invalid: {e}")))
    }
}

/// Builds an XOR-closed probe region inside a real [`SdamSystem`]:
/// registers `perm` (the paper's `add_addr_map()`), allocates
/// `2^(chunk_bits + bank_bits)` bytes under it, demand-faults every
/// page, and verifies the allocation is physically contiguous and
/// aligned — `pa == base | offset` for every page — so probe offsets
/// are PA deltas.
///
/// The extra `bank_bits` of identity chunk-index bits above the AMU
/// window give the agent one pass-through row anchor per fold class,
/// which its permutation recovery needs.
///
/// # Errors
///
/// [`ProbingError::Setup`] if the system rejects the configuration or
/// the allocation is not XOR-closed.
pub fn sdam_probe_region(
    perm: &BitPermutation,
    geom: Geometry,
    timing: Timing,
    chunk_bits: u32,
) -> Result<SdamProbeRegion, ProbingError> {
    let mut sys = SdamSystem::try_new(geom, chunk_bits)
        .map_err(|e| ProbingError::Setup(format!("system: {e}")))?;
    let id = sys
        .add_mapping(perm)
        .map_err(|e| ProbingError::Setup(format!("add_mapping: {e}")))?;
    let probe_bits = chunk_bits + geom.bank_bits();
    let size = 1u64 << probe_bits;
    // Physical pages are handed out in fault order, so an XOR-closed
    // window is built by faulting pages in VA order and the aligned
    // base is found by walking until the next faulted PA is
    // size-aligned. Over-allocate by one region so the walk always has
    // a full window left once it gets there.
    let va = sys
        .malloc(2 * size, Some(id))
        .map_err(|e| ProbingError::Setup(format!("malloc: {e}")))?;
    let page = sys.page_bytes();
    let mut touch = |addr: u64| {
        sys.touch(VirtAddr(addr))
            .map(|pa| pa.0)
            .map_err(|e| ProbingError::Setup(format!("touch of {addr:#x}: {e}")))
    };
    let limit = va.raw() + 2 * size;
    let mut start = (va.raw() + page - 1) & !(page - 1);
    let base_pa = loop {
        if start + size > limit {
            return Err(ProbingError::Setup(format!(
                "no {size:#x}-aligned physical base inside the allocation"
            )));
        }
        let pa = touch(start)?;
        if pa & (size - 1) == 0 {
            break pa;
        }
        start += page;
    };
    let mut off = page;
    while off < size {
        let pa = touch(start + off)?;
        if pa != base_pa | off {
            return Err(ProbingError::Setup(format!(
                "region not XOR-closed: page at offset {off:#x} landed at {pa:#x}, want {:#x}",
                base_pa | off
            )));
        }
        off += page;
    }
    Ok(SdamProbeRegion {
        cmt: sys.cmt_snapshot(),
        id,
        base_pa,
        probe_bits,
        chunk_bits,
        geom,
        timing,
    })
}

impl SuiteEntry {
    /// The committed CI ceiling on this entry's probe count.
    pub fn probe_ceiling(&self) -> u64 {
        match self.truth {
            SuiteTruth::Fold => PROBE_CEILING_FOLD,
            SuiteTruth::Hash(_) => PROBE_CEILING_HASH,
            SuiteTruth::Window(_) => PROBE_CEILING_WINDOW,
        }
    }

    /// Runs the black-box recovery for this entry with `threads`
    /// workers, then grades it against ground truth.
    ///
    /// The agent works purely from [`sdam_probe::ProbeTarget::access`]
    /// latencies; the ground-truth comparison happens here, after the
    /// fact, and fills [`FunctionReport::exact`].
    ///
    /// # Errors
    ///
    /// [`ProbingError`] on setup failure or unrecoverable functions.
    pub fn run(&self, threads: usize) -> Result<RecoveryReport, ProbingError> {
        let agent = Agent::new(self.geom).with_threads(threads);
        match &self.truth {
            SuiteTruth::Fold => {
                let (geom, timing) = (self.geom, self.timing);
                let factory = move || {
                    EngineTarget::new(MappingEngine::identity(), geom, timing, 0, geom.addr_bits())
                };
                let calibration = agent.calibrate_target(&factory);
                let rec = agent.recover_bank_fold(&factory)?;
                let bank_bits = self.geom.bank_bits();
                let exact = !rec.classes.is_empty()
                    && rec
                        .classes
                        .iter()
                        .enumerate()
                        .all(|(j, c)| *c == Some(j as u32 % bank_bits));
                let recovered = fmt_list(
                    rec.classes
                        .iter()
                        .map(|c| c.map_or_else(|| "-".to_string(), |k| k.to_string())),
                );
                Ok(RecoveryReport {
                    target: self.name.to_string(),
                    calibration,
                    functions: vec![FunctionReport {
                        function: "bank-fold".to_string(),
                        recovered,
                        bits: rec.classes.len() as u32,
                        probes: rec.probes,
                        confidence: rec.confidence,
                        exact: Some(exact),
                    }],
                })
            }
            SuiteTruth::Hash(hm) => {
                let (geom, timing) = (self.geom, self.timing);
                let hm_box = hm.clone();
                let factory = move || {
                    EngineTarget::new(
                        MappingEngine::Global(Box::new(hm_box.clone())),
                        geom,
                        timing,
                        0,
                        geom.addr_bits(),
                    )
                };
                let calibration = agent.calibrate_target(&factory);
                let rec = agent.recover_channel_hash(&factory)?;
                let truth = hm.timing_canonical(self.geom);
                let exact = rec.channel_lo == truth.channel_lo()
                    && rec.sources.as_slice() == truth.sources();
                let recovered = fmt_list(
                    rec.sources
                        .iter()
                        .map(|set| fmt_list(set.iter().map(|b| b.to_string()))),
                );
                let ch_hi = self.geom.line_bits() + self.geom.channel_bits();
                Ok(RecoveryReport {
                    target: self.name.to_string(),
                    calibration,
                    functions: vec![FunctionReport {
                        function: "channel-hash".to_string(),
                        recovered,
                        bits: (self.geom.addr_bits() - ch_hi) * self.geom.channel_bits(),
                        probes: rec.probes,
                        confidence: rec.confidence,
                        exact: Some(exact),
                    }],
                })
            }
            SuiteTruth::Window(perm) => {
                let region = sdam_probe_region(perm, self.geom, self.timing, self.chunk_bits)?;
                let factory = region.factory();
                let calibration = agent.calibrate_target(&factory);
                let lo = self.geom.line_bits();
                let len = self.chunk_bits - lo;
                let rec = agent.recover_permutation(&factory, lo, len)?;
                let truth = region.window_truth()?.timing_canonical(self.geom);
                // Invert round-trip over every window bit: the recovered
                // permutation must be a bijection whose inverse undoes it
                // (the `BitPermutation::invert` leg of the verification).
                let inv = rec.perm.invert();
                let roundtrip = (0..len).all(|i| {
                    let bit = 1u64 << (lo + i);
                    inv.apply(rec.perm.apply(bit)) == bit
                });
                let exact =
                    roundtrip && rec.perm.lo() == truth.lo() && rec.perm.table() == truth.table();
                let recovered = format!(
                    "@{}:{}",
                    rec.perm.lo(),
                    fmt_list(rec.perm.table().iter().map(|s| s.to_string()))
                );
                Ok(RecoveryReport {
                    target: self.name.to_string(),
                    calibration,
                    functions: vec![FunctionReport {
                        function: "amu-permutation".to_string(),
                        recovered,
                        bits: len,
                        probes: rec.probes,
                        confidence: rec.confidence,
                        exact: Some(exact),
                    }],
                })
            }
        }
    }
}

/// `[a,b,c]` with no whitespace — stable for fixtures.
fn fmt_list<I: Iterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, s) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s);
    }
    out.push(']');
    out
}

/// The seeded suite: every mapping shape the repo registers, on the
/// paper's HBM2 geometry with refresh enabled (the adversarial timing —
/// quiesce must keep refresh debt out of the probes).
///
/// # Errors
///
/// [`ProbingError::Setup`] if a descriptor fails to compile (a bug in
/// the suite definition, not the agent).
pub fn seeded_suite() -> Result<Vec<SuiteEntry>, ProbingError> {
    let geom = Geometry::hbm2_8gb();
    let timing = Timing::hbm2_with_refresh();
    let chunk_bits = 21;
    let lo = geom.line_bits();
    let len = (chunk_bits - lo) as usize;
    let setup = |e: &dyn fmt::Display| ProbingError::Setup(format!("suite definition: {e}"));

    let channel = MappingDescriptor::new(geom)
        .channel_bits([11, 12, 13, 14, 15])
        .compile_windowed(chunk_bits)
        .map_err(|e| setup(&e))?;
    let reverse =
        BitPermutation::new(lo, (0..len as u32).rev().collect()).map_err(|e| setup(&e))?;

    Ok(vec![
        SuiteEntry {
            name: "dm-identity",
            truth: SuiteTruth::Fold,
            geom,
            timing,
            chunk_bits,
        },
        SuiteEntry {
            name: "hm-default",
            truth: SuiteTruth::Hash(HashMapping::for_geometry(geom)),
            geom,
            timing,
            chunk_bits,
        },
        SuiteEntry {
            name: "hm-canonical",
            truth: SuiteTruth::Hash(HashMapping::for_geometry(geom).timing_canonical(geom)),
            geom,
            timing,
            chunk_bits,
        },
        SuiteEntry {
            name: "sdam-identity",
            truth: SuiteTruth::Window(BitPermutation::identity(lo, len)),
            geom,
            timing,
            chunk_bits,
        },
        SuiteEntry {
            name: "sdam-channel",
            truth: SuiteTruth::Window(channel),
            geom,
            timing,
            chunk_bits,
        },
        SuiteEntry {
            name: "sdam-reverse",
            truth: SuiteTruth::Window(reverse),
            geom,
            timing,
            chunk_bits,
        },
    ])
}

/// Runs every [`seeded_suite`] entry with `threads` workers.
///
/// # Errors
///
/// The first [`ProbingError`] any entry produces.
pub fn run_seeded_suite(threads: usize) -> Result<Vec<RecoveryReport>, ProbingError> {
    seeded_suite()?.iter().map(|e| e.run(threads)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_suite_covers_every_mapping_shape() {
        let suite = seeded_suite().unwrap();
        assert_eq!(suite.len(), 6);
        assert!(suite.iter().any(|e| matches!(e.truth, SuiteTruth::Fold)));
        assert!(suite.iter().any(|e| matches!(e.truth, SuiteTruth::Hash(_))));
        assert_eq!(
            suite
                .iter()
                .filter(|e| matches!(e.truth, SuiteTruth::Window(_)))
                .count(),
            3
        );
    }

    #[test]
    fn sdam_region_is_xor_closed_and_truth_matches_registration() {
        let geom = Geometry::hbm2_8gb();
        let lo = geom.line_bits();
        let perm = BitPermutation::new(lo, (0..15u32).rev().collect()).unwrap();
        let region = sdam_probe_region(&perm, geom, Timing::hbm2(), 21).unwrap();
        assert_eq!(region.probe_bits(), 21 + geom.bank_bits());
        assert_eq!(region.base_pa() & ((1 << region.probe_bits()) - 1), 0);
        // The truth derived through translate_under is the registered
        // permutation itself.
        let truth = region.window_truth().unwrap();
        assert_eq!(truth.lo(), perm.lo());
        assert_eq!(truth.table(), perm.table());
    }

    #[test]
    fn fold_entry_recovers_exactly() {
        let suite = seeded_suite().unwrap();
        let entry = suite.iter().find(|e| e.name == "dm-identity").unwrap();
        let report = entry.run(1).unwrap();
        assert!(report.all_exact(), "report: {}", report.to_json());
        assert!(report.total_probes() <= entry.probe_ceiling());
    }

    #[test]
    fn window_entry_recovers_exactly() {
        let suite = seeded_suite().unwrap();
        let entry = suite.iter().find(|e| e.name == "sdam-reverse").unwrap();
        let report = entry.run(1).unwrap();
        assert!(report.all_exact(), "report: {}", report.to_json());
        assert!(report.total_probes() <= entry.probe_ceiling());
    }
}
