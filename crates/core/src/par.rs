//! Deterministic fan-out over independent work items.
//!
//! The implementation lives in [`sdam_ml::par`] so the training layer
//! can fan minibatch work over the same scoped-thread pool; this module
//! re-exports it for the pipeline's outer loops (per-configuration
//! runs, per-workload profiling), which remain bit-identical to a
//! serial `map` regardless of scheduling.

pub use sdam_ml::par::par_map_indexed;
