//! The workspace-level error type.
//!
//! Each layer keeps its own error — [`ConfigError`] for shapes,
//! [`MemError`] for the allocation stack, [`CmtError`] for the mapping
//! hardware, [`TraceIoError`] for trace files — and the pipeline's
//! fallible entry points (`try_run`, `try_compare`, `try_run_corun`)
//! fold them all into [`SdamError`], so a caller embedding the
//! evaluation pipeline handles one type. The panicking wrappers (`run`,
//! `compare`, …) remain for the figure binaries, which want fail-fast
//! behaviour and route every error through one `exit_on_err`.

use sdam_mapping::CmtError;
use sdam_mem::MemError;
use sdam_sys::ConfigError;
use sdam_trace::io::TraceIoError;

/// Anything the evaluation pipeline can fail with.
#[derive(Debug)]
pub enum SdamError {
    /// An invalid experiment, machine, cache, system, or training
    /// configuration.
    Config(ConfigError),
    /// A failure in the allocation stack (out of memory, bad address,
    /// unknown mapping or process, exhausted mapping ids).
    Mem(MemError),
    /// A failure registering or driving the chunk mapping table.
    Cmt(CmtError),
    /// A failure reading or writing a trace file.
    TraceIo(TraceIoError),
    /// Profiling found no major variables, but the configuration needs
    /// a per-variable profile to select mappings from.
    EmptyProfile,
    /// A co-run was requested with an empty workload list.
    NoWorkloads,
}

impl std::fmt::Display for SdamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdamError::Config(e) => write!(f, "{e}"),
            SdamError::Mem(e) => write!(f, "{e}"),
            SdamError::Cmt(e) => write!(f, "{e}"),
            SdamError::TraceIo(e) => write!(f, "{e}"),
            SdamError::EmptyProfile => {
                write!(
                    f,
                    "profiling found no major variables to select mappings for"
                )
            }
            SdamError::NoWorkloads => write!(f, "need at least one workload"),
        }
    }
}

impl std::error::Error for SdamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdamError::Config(e) => Some(e),
            SdamError::Mem(e) => Some(e),
            SdamError::Cmt(e) => Some(e),
            SdamError::TraceIo(e) => Some(e),
            SdamError::EmptyProfile | SdamError::NoWorkloads => None,
        }
    }
}

impl From<ConfigError> for SdamError {
    fn from(e: ConfigError) -> Self {
        SdamError::Config(e)
    }
}

impl From<MemError> for SdamError {
    fn from(e: MemError) -> Self {
        SdamError::Mem(e)
    }
}

impl From<CmtError> for SdamError {
    fn from(e: CmtError) -> Self {
        SdamError::Cmt(e)
    }
}

impl From<TraceIoError> for SdamError {
    fn from(e: TraceIoError) -> Self {
        SdamError::TraceIo(e)
    }
}

impl From<sdam_ml::TrainingError> for SdamError {
    fn from(e: sdam_ml::TrainingError) -> Self {
        SdamError::Config(ConfigError::Training { what: e.what })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer() {
        let e: SdamError = MemError::OutOfPhysicalMemory.into();
        assert!(matches!(e, SdamError::Mem(_)));
        assert!(e.to_string().contains("physical memory"));
        let e: SdamError = ConfigError::Machine { what: "no cores" }.into();
        assert!(e.to_string().contains("no cores"));
        let e: SdamError = sdam_ml::TrainingError {
            what: "steps must be positive",
        }
        .into();
        assert!(matches!(e, SdamError::Config(ConfigError::Training { .. })));
        assert!(SdamError::EmptyProfile.to_string().contains("major"));
        use std::error::Error;
        assert!(SdamError::Mem(MemError::MappingIdsExhausted)
            .source()
            .is_some());
    }
}
