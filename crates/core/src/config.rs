//! System configurations (paper §7.3) and experiment parameters.

use sdam_hbm::{Geometry, Timing};
use sdam_sys::{ConfigError, MachineConfig};
use sdam_workloads::Scale;

/// The six system configurations the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemConfig {
    /// Baseline system + default (boot-time, Xilinx-IP) mapping.
    BsDm,
    /// Baseline + one global bit-shuffle mapping selected from the
    /// aggregate bit-flip profile of the whole workload mix.
    BsBsm,
    /// Baseline + hashing-based mapping (XOR entropy harvesting).
    BsHm,
    /// SDAM with one bit-shuffle mapping per application.
    SdmBsm,
    /// SDAM with K-Means-clustered per-variable mappings.
    SdmBsmMl {
        /// Number of clusters per application (the paper uses 4 and 32).
        clusters: usize,
    },
    /// SDAM with DL-assisted K-Means (LSTM autoencoder embeddings).
    SdmBsmDl {
        /// Number of clusters per application.
        clusters: usize,
    },
}

impl SystemConfig {
    /// All configurations of the paper's Fig. 12, in its order.
    pub fn paper_lineup() -> Vec<SystemConfig> {
        vec![
            SystemConfig::BsDm,
            SystemConfig::BsBsm,
            SystemConfig::BsHm,
            SystemConfig::SdmBsm,
            SystemConfig::SdmBsmMl { clusters: 4 },
            SystemConfig::SdmBsmMl { clusters: 32 },
            SystemConfig::SdmBsmDl { clusters: 4 },
            SystemConfig::SdmBsmDl { clusters: 32 },
        ]
    }

    /// True for the configurations that use the SDAM hardware (CMT +
    /// per-chunk AMU configurations).
    pub fn is_sdam(&self) -> bool {
        matches!(
            self,
            SystemConfig::SdmBsm | SystemConfig::SdmBsmMl { .. } | SystemConfig::SdmBsmDl { .. }
        )
    }

    /// True for configurations that need a profiling run.
    pub fn needs_profiling(&self) -> bool {
        !matches!(self, SystemConfig::BsDm | SystemConfig::BsHm)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a clustered configuration has zero clusters.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`SystemConfig::validate`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::System`] naming the violated constraint.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        match self {
            SystemConfig::SdmBsmMl { clusters: 0 } | SystemConfig::SdmBsmDl { clusters: 0 } => {
                Err(ConfigError::System {
                    what: "cluster count must be positive",
                })
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemConfig::BsDm => write!(f, "BS+DM"),
            SystemConfig::BsBsm => write!(f, "BS+BSM"),
            SystemConfig::BsHm => write!(f, "BS+HM"),
            SystemConfig::SdmBsm => write!(f, "SDM+BSM"),
            SystemConfig::SdmBsmMl { clusters } => write!(f, "SDM+BSM+ML({clusters})"),
            SystemConfig::SdmBsmDl { clusters } => write!(f, "SDM+BSM+DL({clusters})"),
        }
    }
}

/// How much host parallelism the evaluation pipeline may use.
///
/// Parallel execution is *deterministic*: every tier (per-config runs
/// in [`crate::pipeline::compare`], per-workload profiling in
/// [`crate::pipeline::run_corun`], and the channel-sharded memory
/// simulation inside `Machine::run_with`) produces reports bit-identical
/// to [`Parallelism::Serial`]. The knob only trades wall-clock for
/// host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded everywhere (the reference behaviour).
    Serial,
    /// Use exactly this many worker threads per parallel region.
    Threads(usize),
    /// Use the host's available parallelism.
    #[default]
    Auto,
}

impl Parallelism {
    /// The worker-thread count this setting resolves to (>= 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Everything an end-to-end run needs besides the workload and the
/// configuration.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Memory geometry (default: the paper's 8 GB, 32-channel HBM2).
    pub geometry: Geometry,
    /// Memory timing; scale it for the Fig. 14 frequency study.
    pub timing: Timing,
    /// Chunk size in address bits (default 21 = 2 MB).
    pub chunk_bits: u32,
    /// The machine running the workload (CPU or accelerator).
    pub machine: MachineConfig,
    /// Workload scale for the *evaluation* run.
    pub scale: Scale,
    /// Seed for the *profiling* run (the paper profiles on the training
    /// input and evaluates on the test input).
    pub profile_seed: u64,
    /// ML/DL training configuration.
    pub training: sdam_ml::TrainingConfig,
    /// Host-thread budget for the pipeline (deterministic; see
    /// [`Parallelism`]).
    pub parallelism: Parallelism,
}

impl Experiment {
    /// The paper's platform at a laptop-runnable scale.
    pub fn quick() -> Self {
        Experiment {
            geometry: Geometry::hbm2_8gb(),
            timing: Timing::hbm2(),
            chunk_bits: 21,
            machine: MachineConfig::cpu(),
            scale: Scale::tiny(),
            profile_seed: 7,
            training: sdam_ml::TrainingConfig::laptop(),
            parallelism: Parallelism::Auto,
        }
    }

    /// Bench-harness scale (used by the figure binaries).
    pub fn bench() -> Self {
        Experiment {
            scale: Scale::small(),
            ..Experiment::quick()
        }
    }

    /// Validates the experiment.
    ///
    /// # Panics
    ///
    /// Panics if the chunk does not fit the physical space or is smaller
    /// than a page.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`Experiment::validate`].
    ///
    /// Beyond the page/memory sandwich the original asserts checked,
    /// this also enforces the CMT's crossbar window (at most 21
    /// chunk-offset bits above the 6-bit line offset) — previously an
    /// invalid `chunk_bits` passed validation and panicked later inside
    /// `Cmt::new`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the violated constraint.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        let addr_bits = self.geometry.addr_bits();
        if self.chunk_bits <= 12 || self.chunk_bits >= addr_bits || self.chunk_bits - 6 > 21 {
            return Err(ConfigError::ChunkBits {
                chunk_bits: self.chunk_bits,
                addr_bits,
            });
        }
        self.machine.try_validate()?;
        self.training
            .try_validate()
            .map_err(|e| ConfigError::Training { what: e.what })?;
        Ok(())
    }
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_fig12() {
        let l = SystemConfig::paper_lineup();
        assert_eq!(l.len(), 8);
        assert_eq!(l[0], SystemConfig::BsDm);
        assert_eq!(l[0].to_string(), "BS+DM");
        assert_eq!(
            l[7].to_string(),
            "SDM+BSM+DL(32)",
            "display names follow the paper"
        );
    }

    #[test]
    fn classification() {
        assert!(!SystemConfig::BsDm.is_sdam());
        assert!(!SystemConfig::BsHm.needs_profiling());
        assert!(SystemConfig::BsBsm.needs_profiling());
        assert!(SystemConfig::SdmBsmMl { clusters: 4 }.is_sdam());
    }

    #[test]
    fn quick_experiment_is_valid() {
        Experiment::quick().validate();
        Experiment::bench().validate();
    }

    #[test]
    fn parallelism_resolves_to_at_least_one_thread() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(6).threads(), 6);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }
}
