//! # sdam — Software-Defined Address Mapping
//!
//! A library reproduction of Zhang, Swift, Li,
//! *Software-Defined Address Mapping: A Case on 3D Memory*
//! (ASPLOS '22): user programs control the DRAM physical-to-hardware
//! address mapping per data structure, so every variable's access
//! pattern spreads across the channel-level parallelism (CLP) of
//! 3D-stacked memory.
//!
//! This crate is the top of the stack. It wires together:
//!
//! * [`sdam_hbm`] — the HBM channel/bank/row simulator,
//! * [`sdam_mapping`] — AMU crossbar mappings, the CMT, BFRV profiling,
//! * [`sdam_mem`] — the chunk-based physical allocator and the
//!   mapping-aware multi-heap malloc,
//! * [`sdam_trace`] — traces and variable-level profiling,
//! * [`sdam_ml`] — K-Means and the DL-assisted (LSTM autoencoder)
//!   mapping selection,
//! * [`sdam_sys`] — the core / accelerator execution model,
//! * [`sdam_workloads`] — the paper's benchmarks,
//!
//! into two public layers:
//!
//! 1. [`system::SdamSystem`] — the "OS + hardware" object a program
//!    talks to: `add_mapping()` (the paper's `add_addr_map()`),
//!    mapping-aware allocation, demand paging, CMT maintenance, and
//!    address translation all the way to memory coordinates.
//! 2. [`pipeline`] — the evaluation harness: profile a workload,
//!    select mappings under one of the paper's six
//!    [`SystemConfig`]urations, allocate, execute on the machine
//!    model, and report speedups.
//!
//! ## Quickstart
//!
//! ```
//! use sdam::{pipeline, Experiment, SystemConfig};
//! use sdam_workloads::datacopy::DataCopy;
//!
//! // A 4-thread data copy with a channel-hostile stride.
//! let workload = DataCopy::new(vec![32]);
//! let exp = Experiment::quick();
//! let cmp = pipeline::compare(
//!     &workload,
//!     &[SystemConfig::BsDm, SystemConfig::SdmBsm],
//!     &exp,
//! );
//! // SDAM beats the fixed default mapping on this workload.
//! assert!(cmp.speedup_of(SystemConfig::SdmBsm).unwrap() > 1.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod error;
pub mod metrics;
pub mod par;
pub mod pipeline;
pub mod probing;
pub mod profiling;
pub mod report;
pub mod stage;
pub mod system;

pub use config::{Experiment, Parallelism, SystemConfig};
pub use error::SdamError;
pub use report::{Comparison, PhaseTimes, RunResult};
pub use sdam_obs as obs;
pub use sdam_probe as probe;
pub use sdam_sys::ConfigError;
pub use system::{ProcessId, SdamSystem};
