//! The staged evaluation pipeline.
//!
//! [`crate::pipeline`]'s entry points used to be monolithic functions;
//! they are now thin drivers over five composable [`Stage`] objects —
//! [`ProfileStage`] → [`SelectStage`] → [`AllocStage`] →
//! [`ExecuteStage`] → [`ReportStage`] — that communicate exclusively
//! through a shared [`RunContext`]. Each stage reads the artifacts its
//! predecessors deposited (profile, selection, materialized trace, …),
//! produces its own, and records its wall-clock in
//! [`PhaseTimes`].
//!
//! Expensive artifacts are memoized in a [`StageCache`] keyed by
//! *content*: a profile's key folds in the workload's
//! [`fingerprint`](Workload::fingerprint), the profiling seed/scale, the
//! memory geometry, and the chunk size — everything the artifact is a
//! deterministic function of. A selection's key adds the system
//! configuration and the training hyper-parameters. Because every
//! artifact is a pure function of its key, a cache hit is bit-identical
//! to recomputation; [`crate::pipeline::compare`] exploits this to
//! profile each workload exactly once across all configurations, and a
//! harness sweeping many configurations can pass one cache to
//! [`crate::pipeline::try_compare_with_cache`] to reuse artifacts across
//! calls. Hit/miss counters expose the reuse for tests and benchmarks.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use sdam_mapping::MappingId;
use sdam_sys::{ExecutionReport, Machine, MappingEngine};
use sdam_trace::{Trace, VariableId};
use sdam_workloads::Workload;

use crate::config::{Experiment, SystemConfig};
use crate::error::SdamError;
use crate::profiling::{self, ProfileData, Selection, SelectionOutcome};
use crate::report::{PhaseTimes, RunResult};
use crate::system::SdamSystem;

/// Locks a mutex, recovering the data from a poisoned lock (cache
/// values are append-only, so a panicked writer cannot leave a torn
/// entry behind).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The content key under which a workload's profile is cached: the
/// workload identity plus everything profiling is a deterministic
/// function of (training seed + scale, geometry, chunk size).
pub fn profile_key(workload: &dyn Workload, exp: &Experiment) -> String {
    format!(
        "{}|{:?}|{:?}|chunk={}",
        workload.fingerprint(),
        exp.scale.with_seed(exp.profile_seed),
        exp.geometry,
        exp.chunk_bits
    )
}

/// The content key under which a selection is cached: the profile's key
/// plus the configuration and the training hyper-parameters.
pub fn selection_key(profile_key: &str, config: SystemConfig, exp: &Experiment) -> String {
    format!("{profile_key}|cfg={config:?}|train={:?}", exp.training)
}

/// The content key under which a trained DL clustering is cached: the
/// profile's key plus the training hyper-parameters and the cluster
/// count — everything [`sdam_ml::dlkmeans::cluster_variables_dl`] is a
/// deterministic function of. Narrower than [`selection_key`]: it omits
/// the [`SystemConfig`], so any configuration that trains on the same
/// profile with the same hyper-parameters shares the embedding.
pub fn embedding_key(profile_key: &str, clusters: usize, exp: &Experiment) -> String {
    format!("{profile_key}|train={:?}|k={clusters}", exp.training)
}

/// A content-keyed memo of the pipeline's expensive artifacts.
///
/// Shared by reference across the per-configuration fan-out of
/// [`crate::pipeline::compare`] and the per-workload profiling of
/// [`crate::pipeline::run_corun`]; a harness can hold one cache across
/// many calls to amortize profiling over a whole sweep.
#[derive(Debug, Default)]
pub struct StageCache {
    profiles: Mutex<HashMap<String, Arc<ProfileData>>>,
    selections: Mutex<HashMap<String, Arc<SelectionOutcome>>>,
    embeddings: Mutex<HashMap<String, Arc<sdam_ml::dlkmeans::DlClustering>>>,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    selection_hits: AtomicU64,
    selection_misses: AtomicU64,
    embedding_hits: AtomicU64,
    embedding_misses: AtomicU64,
}

impl StageCache {
    /// An empty cache.
    pub fn new() -> Self {
        StageCache::default()
    }

    /// Returns the cached profile for `key`, computing and inserting it
    /// on a miss. Concurrent misses on the same key may both compute;
    /// the first insertion wins (both results are bit-identical, so the
    /// race only costs time, never determinism).
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; nothing is cached on failure.
    pub fn profile_or_try<F>(&self, key: &str, compute: F) -> Result<Arc<ProfileData>, SdamError>
    where
        F: FnOnce() -> Result<ProfileData, SdamError>,
    {
        if let Some(p) = lock(&self.profiles).get(key) {
            self.profile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(p));
        }
        self.profile_misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(compute()?);
        Ok(Arc::clone(
            lock(&self.profiles)
                .entry(key.to_string())
                .or_insert(computed),
        ))
    }

    /// Returns the cached selection for `key`, computing and inserting
    /// it on a miss (same contract as [`StageCache::profile_or_try`]).
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; nothing is cached on failure.
    pub fn selection_or_try<F>(
        &self,
        key: &str,
        compute: F,
    ) -> Result<Arc<SelectionOutcome>, SdamError>
    where
        F: FnOnce() -> Result<SelectionOutcome, SdamError>,
    {
        if let Some(s) = lock(&self.selections).get(key) {
            self.selection_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(s));
        }
        self.selection_misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(compute()?);
        Ok(Arc::clone(
            lock(&self.selections)
                .entry(key.to_string())
                .or_insert(computed),
        ))
    }

    /// Returns the cached DL clustering for `key` (see
    /// [`embedding_key`]), computing and inserting it on a miss (same
    /// contract as [`StageCache::profile_or_try`]). Training the
    /// autoencoder dominates DL selection cost, so memoizing the
    /// clustering lets a sweep pay for training once per
    /// (profile, hyper-parameters, k) triple.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; nothing is cached on failure.
    pub fn embedding_or_try<F>(
        &self,
        key: &str,
        compute: F,
    ) -> Result<Arc<sdam_ml::dlkmeans::DlClustering>, SdamError>
    where
        F: FnOnce() -> Result<sdam_ml::dlkmeans::DlClustering, SdamError>,
    {
        if let Some(e) = lock(&self.embeddings).get(key) {
            self.embedding_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(e));
        }
        self.embedding_misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(compute()?);
        Ok(Arc::clone(
            lock(&self.embeddings)
                .entry(key.to_string())
                .or_insert(computed),
        ))
    }

    /// Profile lookups served from the cache.
    pub fn profile_hits(&self) -> u64 {
        self.profile_hits.load(Ordering::Relaxed)
    }

    /// Profile lookups that had to compute (= profiling passes run).
    pub fn profile_misses(&self) -> u64 {
        self.profile_misses.load(Ordering::Relaxed)
    }

    /// Selection lookups served from the cache.
    pub fn selection_hits(&self) -> u64 {
        self.selection_hits.load(Ordering::Relaxed)
    }

    /// Selection lookups that had to compute.
    pub fn selection_misses(&self) -> u64 {
        self.selection_misses.load(Ordering::Relaxed)
    }

    /// DL-clustering lookups served from the cache.
    pub fn embedding_hits(&self) -> u64 {
        self.embedding_hits.load(Ordering::Relaxed)
    }

    /// DL-clustering lookups that had to train.
    pub fn embedding_misses(&self) -> u64 {
        self.embedding_misses.load(Ordering::Relaxed)
    }
}

/// A profile either borrowed from the caller (the historical
/// `run_with_profile` contract) or shared out of the [`StageCache`] —
/// either way, the stages read it without copying the data.
#[derive(Debug, Clone)]
pub enum ProfileHandle<'a> {
    /// Supplied by the caller; the context only borrows it.
    Borrowed(&'a ProfileData),
    /// Owned by the cache; cheap to clone across runs.
    Shared(Arc<ProfileData>),
}

impl std::ops::Deref for ProfileHandle<'_> {
    type Target = ProfileData;
    fn deref(&self) -> &ProfileData {
        match self {
            ProfileHandle::Borrowed(d) => d,
            ProfileHandle::Shared(d) => d,
        }
    }
}

/// The shared blackboard the stages communicate through: fixed inputs
/// (workload, configuration, experiment, cache) plus one slot per
/// artifact, filled as the stages run.
pub struct RunContext<'a> {
    /// The workload under evaluation.
    pub workload: &'a dyn Workload,
    /// The system configuration being evaluated.
    pub config: SystemConfig,
    /// The experiment parameters.
    pub exp: &'a Experiment,
    /// The artifact memo (shared across runs).
    pub cache: &'a StageCache,
    /// Profile data ([`ProfileStage`], or pre-seeded by the caller).
    pub profile: Option<ProfileHandle<'a>>,
    /// The mapping plan ([`SelectStage`]).
    pub selection: Option<SelectionOutcome>,
    /// Learning cost to report: `Some` only for configurations that
    /// selected from a real profile ([`SelectStage`]).
    pub learning_time: Option<Duration>,
    /// The system the evaluation trace was allocated into
    /// ([`AllocStage`]).
    pub sys: Option<SdamSystem>,
    /// The physical-address evaluation trace ([`AllocStage`]).
    pub pa_trace: Option<Trace>,
    /// The address-mapping engine the machine ran with
    /// ([`ExecuteStage`]).
    pub engine: Option<MappingEngine>,
    /// The machine-model execution report ([`ExecuteStage`]).
    pub report: Option<ExecutionReport>,
    /// The assembled result ([`ReportStage`]).
    pub result: Option<RunResult>,
    /// Host wall-clock per stage.
    pub phases: PhaseTimes,
}

impl<'a> RunContext<'a> {
    /// A fresh context with every artifact slot empty.
    pub fn new(
        workload: &'a dyn Workload,
        config: SystemConfig,
        exp: &'a Experiment,
        cache: &'a StageCache,
    ) -> Self {
        RunContext {
            workload,
            config,
            exp,
            cache,
            profile: None,
            selection: None,
            learning_time: None,
            sys: None,
            pa_trace: None,
            engine: None,
            report: None,
            result: None,
            phases: PhaseTimes::default(),
        }
    }
}

/// One step of the evaluation pipeline.
///
/// A stage reads its inputs from the [`RunContext`], writes its
/// artifacts back into it, and reports failures as [`SdamError`].
/// Running a stage before its prerequisites is a driver bug and panics.
pub trait Stage {
    /// Short name for logs and per-stage benchmarks.
    fn name(&self) -> &'static str;

    /// Runs the stage against the context.
    ///
    /// # Errors
    ///
    /// Any [`SdamError`] the underlying work surfaces.
    fn run(&self, ctx: &mut RunContext<'_>) -> Result<(), SdamError>;
}

/// Profiles the workload's training input on the baseline system
/// (through the cache), when the configuration needs a profile and the
/// caller did not pre-seed one.
pub struct ProfileStage;

impl Stage for ProfileStage {
    fn name(&self) -> &'static str {
        "profile"
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<(), SdamError> {
        if !ctx.config.needs_profiling() || ctx.profile.is_some() {
            return Ok(());
        }
        let t0 = Instant::now();
        let key = profile_key(ctx.workload, ctx.exp);
        let data = ctx.cache.profile_or_try(&key, || {
            profiling::try_profile_on_baseline(ctx.workload, ctx.exp)
        })?;
        ctx.profile = Some(ProfileHandle::Shared(data));
        ctx.phases.profile = t0.elapsed();
        Ok(())
    }
}

/// Turns the profile into a mapping plan for the configuration
/// (through the cache); configurations that skip profiling select from
/// the empty profile.
pub struct SelectStage;

impl Stage for SelectStage {
    fn name(&self) -> &'static str {
        "select"
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<(), SdamError> {
        let t0 = Instant::now();
        let outcome = match &ctx.profile {
            Some(data) if ctx.config.needs_profiling() => {
                let pkey = profile_key(ctx.workload, ctx.exp);
                let key = selection_key(&pkey, ctx.config, ctx.exp);
                let out = ctx.cache.selection_or_try(&key, || {
                    profiling::try_select_mappings_cached(
                        ctx.config, data, ctx.exp, ctx.cache, &pkey,
                    )
                })?;
                ctx.learning_time = Some(out.learning_time);
                (*out).clone()
            }
            _ => {
                let empty = profiling::empty_profile(ctx.exp);
                profiling::try_select_mappings(ctx.config, &empty, ctx.exp)?
            }
        };
        ctx.selection = Some(outcome);
        ctx.phases.select = t0.elapsed();
        Ok(())
    }
}

/// Generates the evaluation trace, allocates it into a fresh
/// [`SdamSystem`] under the selected mappings, and materializes the
/// physical-address trace.
pub struct AllocStage;

impl Stage for AllocStage {
    fn name(&self) -> &'static str {
        "alloc"
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<(), SdamError> {
        let Some(outcome) = &ctx.selection else {
            panic!("AllocStage needs SelectStage's selection");
        };
        let t0 = Instant::now();
        let eval = ctx.workload.generate(ctx.exp.scale);
        let mut sys = SdamSystem::try_new(ctx.exp.geometry, ctx.exp.chunk_bits)?;
        let var_mapping: BTreeMap<VariableId, MappingId> = match &outcome.selection {
            Selection::Sdam { perms, assignment } => {
                let mut ids = Vec::with_capacity(perms.len());
                for p in perms {
                    ids.push(sys.try_add_mapping(p)?);
                }
                assignment.iter().map(|(&v, &c)| (v, ids[c])).collect()
            }
            _ => BTreeMap::new(),
        };
        let pa_trace =
            profiling::try_materialize_in(&eval, &mut sys, crate::ProcessId(0), &var_mapping)?;
        ctx.sys = Some(sys);
        ctx.pa_trace = Some(pa_trace);
        ctx.phases.materialize = t0.elapsed();
        Ok(())
    }
}

/// Builds the mapping engine from the selection and runs the
/// materialized trace on the machine model.
pub struct ExecuteStage;

impl Stage for ExecuteStage {
    fn name(&self) -> &'static str {
        "execute"
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<(), SdamError> {
        let Some(outcome) = &ctx.selection else {
            panic!("ExecuteStage needs SelectStage's selection");
        };
        let engine = match &outcome.selection {
            Selection::GlobalIdentity => MappingEngine::identity(),
            Selection::GlobalShuffle(m) => MappingEngine::Global(Box::new(m.clone())),
            Selection::GlobalHash(m) => MappingEngine::Global(Box::new(m.clone())),
            Selection::Sdam { .. } => {
                let Some(sys) = &ctx.sys else {
                    panic!("ExecuteStage needs AllocStage's system for a chunked engine");
                };
                MappingEngine::Chunked(sys.cmt_snapshot())
            }
        };
        let Some(pa_trace) = &ctx.pa_trace else {
            panic!("ExecuteStage needs AllocStage's materialized trace");
        };
        let mut machine =
            Machine::new(ctx.exp.machine, ctx.exp.geometry).with_timing(ctx.exp.timing);
        let t0 = Instant::now();
        let report = machine.run_with(pa_trace, &engine, ctx.exp.parallelism.threads());
        ctx.phases.execute = t0.elapsed();
        ctx.engine = Some(engine);
        ctx.report = Some(report);
        Ok(())
    }
}

/// Assembles the final [`RunResult`] from the context's artifacts.
pub struct ReportStage;

impl Stage for ReportStage {
    fn name(&self) -> &'static str {
        "report"
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<(), SdamError> {
        let Some(report) = ctx.report.take() else {
            panic!("ReportStage needs ExecuteStage's report");
        };
        let metrics = crate::metrics::collect_run_metrics(&report, ctx.sys.as_ref(), &ctx.phases);
        ctx.result = Some(RunResult {
            config: ctx.config,
            report,
            learning_time: ctx.learning_time,
            phases: ctx.phases,
            metrics,
        });
        Ok(())
    }
}

/// The standard single-workload pipeline, in dependency order.
pub fn standard_stages() -> Vec<Box<dyn Stage>> {
    vec![
        Box::new(ProfileStage),
        Box::new(SelectStage),
        Box::new(AllocStage),
        Box::new(ExecuteStage),
        Box::new(ReportStage),
    ]
}

/// Drives the stages over the context, in order, stopping at the first
/// failure.
///
/// # Errors
///
/// The first stage error.
pub fn run_stages(ctx: &mut RunContext<'_>, stages: &[Box<dyn Stage>]) -> Result<(), SdamError> {
    for s in stages {
        s.run(ctx)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdam_workloads::datacopy::DataCopy;

    #[test]
    fn stages_have_names_in_order() {
        let names: Vec<&str> = standard_stages().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["profile", "select", "alloc", "execute", "report"]);
    }

    #[test]
    fn cache_key_distinguishes_workload_parameters() {
        let exp = Experiment::quick();
        let a = profile_key(&DataCopy::new(vec![1]), &exp);
        let b = profile_key(&DataCopy::new(vec![32]), &exp);
        assert_ne!(a, b, "different strides must not share a profile");
        let mut exp2 = Experiment::quick();
        exp2.profile_seed += 1;
        assert_ne!(
            a,
            profile_key(&DataCopy::new(vec![1]), &exp2),
            "different profiling seeds must not share a profile"
        );
        let s1 = selection_key(&a, SystemConfig::SdmBsm, &exp);
        let s2 = selection_key(&a, SystemConfig::SdmBsmMl { clusters: 4 }, &exp);
        assert_ne!(s1, s2, "different configs must not share a selection");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = StageCache::new();
        let exp = Experiment::quick();
        let w = DataCopy::new(vec![8]);
        let key = profile_key(&w, &exp);
        let first = cache
            .profile_or_try(&key, || profiling::try_profile_on_baseline(&w, &exp))
            .unwrap();
        let second = cache
            .profile_or_try(&key, || panic!("second lookup must not recompute"))
            .unwrap();
        assert_eq!(cache.profile_misses(), 1);
        assert_eq!(cache.profile_hits(), 1);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit returns the same artifact"
        );
    }

    #[test]
    fn embedding_key_narrower_than_selection_key() {
        let exp = Experiment::quick();
        let pkey = profile_key(&DataCopy::new(vec![1]), &exp);
        let e4 = embedding_key(&pkey, 4, &exp);
        let e2 = embedding_key(&pkey, 2, &exp);
        assert_ne!(e4, e2, "different k must not share a trained model");
        let mut exp2 = Experiment::quick();
        exp2.training.seed += 1;
        assert_ne!(
            e4,
            embedding_key(&pkey, 4, &exp2),
            "different training seeds must not share a trained model"
        );
    }

    #[test]
    fn dl_selection_trains_once_per_profile_and_k() {
        let cache = StageCache::new();
        let exp = Experiment::quick();
        let w = DataCopy::new(vec![1, 16]);
        let data = profiling::try_profile_on_baseline(&w, &exp).unwrap();
        let pkey = profile_key(&w, &exp);
        let cfg = SystemConfig::SdmBsmDl { clusters: 2 };
        let a = profiling::try_select_mappings_cached(cfg, &data, &exp, &cache, &pkey).unwrap();
        assert_eq!(cache.embedding_misses(), 1);
        assert_eq!(cache.embedding_hits(), 0);
        let b = profiling::try_select_mappings_cached(cfg, &data, &exp, &cache, &pkey).unwrap();
        assert_eq!(cache.embedding_misses(), 1, "second select retrained");
        assert_eq!(cache.embedding_hits(), 1);
        match (&a.selection, &b.selection) {
            (
                profiling::Selection::Sdam { assignment: x, .. },
                profiling::Selection::Sdam { assignment: y, .. },
            ) => assert_eq!(x, y, "cache hit changed the plan"),
            _ => panic!("DL config must produce an SDAM plan"),
        }
    }

    #[test]
    fn cache_does_not_cache_failures() {
        let cache = StageCache::new();
        let err = cache.profile_or_try("k", || Err(SdamError::EmptyProfile));
        assert!(err.is_err());
        assert_eq!(cache.profile_misses(), 1);
        // The key is still computable afterwards.
        let exp = Experiment::quick();
        let w = DataCopy::new(vec![8]);
        let ok = cache.profile_or_try("k", || profiling::try_profile_on_baseline(&w, &exp));
        assert!(ok.is_ok());
        assert_eq!(cache.profile_misses(), 2);
        assert_eq!(cache.profile_hits(), 0);
    }
}
