//! [`SdamSystem`]: the OS + hardware object a program allocates through.
//!
//! This is the library's main user-facing type. It owns the chunk-based
//! physical allocator, the process address space, the multi-heap malloc,
//! and the hardware CMT, and keeps them consistent: registering a
//! mapping updates both malloc (so a heap exists for it) and the CMT
//! (so the AMU can be configured); a page fault pulls a frame from the
//! right chunk group and, when a fresh chunk is acquired, writes its
//! entry into the CMT.

use sdam_hbm::{DecodedAddr, Geometry};
use sdam_mapping::{BitPermutation, Cmt, MappingId, PhysAddr};
use sdam_mem::heap::MultiHeapMalloc;
use sdam_mem::phys::{ChunkAllocator, ChunkEvent};
use sdam_mem::vma::AddressSpace;
use sdam_mem::{MemError, VirtAddr};
use sdam_obs::{EventRing, Registry, DEFAULT_RING_CAPACITY};

use crate::error::SdamError;
use crate::metrics::OBS_ENABLED;

/// The software-defined-address-mapping system.
///
/// # Example
///
/// ```
/// use sdam::SdamSystem;
/// use sdam_hbm::Geometry;
/// use sdam_mapping::select;
///
/// let geom = Geometry::hbm2_8gb();
/// let mut sys = SdamSystem::new(geom, 21);
///
/// // Register a mapping tuned for a stride-16 structure.
/// let perm = sys.permutation_for_stride(16);
/// let id = sys.add_mapping(&perm)?;
///
/// // Allocate the structure under that mapping and touch it.
/// let va = sys.malloc(1 << 20, Some(id))?;
/// let coords = sys.access(va)?;
/// assert!(coords.channel < geom.num_channels() as u64);
/// # Ok::<(), sdam_mem::MemError>(())
/// ```
/// Identifies a process sharing the system's physical memory and CMT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[derive(Debug)]
struct Process {
    aspace: AddressSpace,
    malloc: MultiHeapMalloc,
}

/// The software-defined-address-mapping system: shared physical
/// memory, chunk groups, and CMT, plus one or more processes each with
/// its own address space and mapping-aware heap allocator.
#[derive(Debug)]
pub struct SdamSystem {
    geometry: Geometry,
    phys: ChunkAllocator,
    processes: Vec<Process>,
    cmt: Cmt,
    page_bits: u32,
    registered: Vec<MappingId>,
    /// Structured allocation/CMT event trace. All pushes happen on the
    /// system's serial mutation paths (`malloc_in`, `touch_in`), so the
    /// order is deterministic by construction; with the `obs` feature
    /// off the ring stays empty.
    events: EventRing,
}

impl SdamSystem {
    /// Builds a system over `geometry` with `2^chunk_bits`-byte chunks
    /// and 4 KB pages.
    ///
    /// # Panics
    ///
    /// Panics if the chunk size does not fit between a page and the
    /// device capacity.
    pub fn new(geometry: Geometry, chunk_bits: u32) -> Self {
        match SdamSystem::try_new(geometry, chunk_bits) {
            Ok(sys) => sys,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`SdamSystem::new`].
    ///
    /// # Errors
    ///
    /// [`SdamError::Cmt`] if the chunk size does not fit between a page
    /// and the device capacity (or exceeds the CMT's crossbar window).
    pub fn try_new(geometry: Geometry, chunk_bits: u32) -> Result<Self, SdamError> {
        let page_bits = 12;
        // The CMT's window check subsumes the allocator's (page < chunk
        // < memory), so validate through it before any construction.
        let cmt = Cmt::try_new(geometry.addr_bits(), chunk_bits)?;
        if chunk_bits <= page_bits {
            return Err(SdamError::Cmt(sdam_mapping::CmtError::InvalidChunkBits {
                chunk_bits,
                phys_bits: geometry.addr_bits(),
            }));
        }
        Ok(SdamSystem {
            geometry,
            phys: ChunkAllocator::new(geometry.addr_bits(), chunk_bits, page_bits),
            processes: vec![Process {
                aspace: AddressSpace::new(page_bits),
                malloc: MultiHeapMalloc::new(page_bits),
            }],
            cmt,
            page_bits,
            registered: vec![MappingId::DEFAULT],
            events: EventRing::with_capacity(if OBS_ENABLED {
                DEFAULT_RING_CAPACITY
            } else {
                0
            }),
        })
    }

    /// Spawns a new process: a fresh address space and heap allocator
    /// that share this system's physical memory, chunk groups, and CMT
    /// (the paper's §4: "the physical memory space ... is globally
    /// shared by all the processes"). Every registered mapping is
    /// visible in the new process.
    pub fn spawn_process(&mut self) -> ProcessId {
        let mut malloc = MultiHeapMalloc::new(self.page_bits);
        for &id in &self.registered {
            malloc.register_external(id);
        }
        self.processes.push(Process {
            aspace: AddressSpace::new(self.page_bits),
            malloc,
        });
        ProcessId(self.processes.len() as u32 - 1)
    }

    /// Number of live processes (at least 1).
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The device geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The hardware chunk-mapping table (read-only view).
    pub fn cmt(&self) -> &Cmt {
        &self.cmt
    }

    /// Borrows the CMT for use as a
    /// [`sdam_sys::MappingEngine::Chunked`] engine (cloned, as the
    /// hardware holds its own copy of the table).
    pub fn cmt_snapshot(&self) -> Cmt {
        self.cmt.clone()
    }

    /// The chunk-offset permutation a known stride wants — convenience
    /// wrapper over [`sdam_mapping::select`] windowed to this system's
    /// chunk size.
    pub fn permutation_for_stride(&self, stride_lines: u64) -> BitPermutation {
        let addrs = (0..4096u64).map(|i| i * stride_lines * 64);
        let bfrv = sdam_mapping::BitFlipRateVector::from_addrs(addrs, self.geometry.addr_bits());
        sdam_mapping::select::permutation_for_bfrv_windowed(
            &bfrv,
            self.geometry,
            self.cmt.chunk_bits(),
        )
    }

    /// Registers a new address mapping (the paper's `add_addr_map()`),
    /// configuring both the allocator and the hardware CMT.
    ///
    /// # Errors
    ///
    /// [`MemError::MappingIdsExhausted`] after 255 registrations.
    ///
    /// # Panics
    ///
    /// Panics if the permutation window is not this system's chunk
    /// offset (`[6, chunk_bits)`).
    pub fn add_mapping(&mut self, perm: &BitPermutation) -> Result<MappingId, MemError> {
        match self.try_add_mapping(perm) {
            Ok(id) => Ok(id),
            Err(SdamError::Mem(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`SdamSystem::add_mapping`] — a wrong
    /// permutation window comes back as [`SdamError::Cmt`] instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// [`SdamError::Mem`] ([`MemError::MappingIdsExhausted`]) after 255
    /// registrations; [`SdamError::Cmt`] for a permutation that does not
    /// cover this system's chunk offset.
    pub fn try_add_mapping(&mut self, perm: &BitPermutation) -> Result<MappingId, SdamError> {
        // Check the window before consuming a global id.
        if perm.lo() != 6 || perm.len() as u32 != self.cmt.chunk_bits() - 6 {
            return Err(SdamError::Cmt(sdam_mapping::CmtError::WrongWindow {
                lo: perm.lo(),
                len: perm.len() as u32,
                chunk_bits: self.cmt.chunk_bits(),
            }));
        }
        // Ids are global: the CMT is shared by every process.
        let id = self.processes[0].malloc.add_addr_map()?;
        for p in &mut self.processes[1..] {
            p.malloc.register_external(id);
        }
        self.registered.push(id);
        self.cmt.try_register(id, perm)?;
        Ok(id)
    }

    /// Allocates `size` bytes under `mapping` (default mapping when
    /// `None`), wiring any newly created heap to a VMA.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors ([`MemError`]).
    pub fn malloc(&mut self, size: u64, mapping: Option<MappingId>) -> Result<VirtAddr, MemError> {
        self.malloc_in(ProcessId(0), size, mapping)
    }

    /// Looks up a process, rejecting pids this system never handed out.
    fn process_mut(&mut self, pid: ProcessId) -> Result<&mut Process, MemError> {
        self.processes
            .get_mut(pid.0 as usize)
            .ok_or(MemError::UnknownProcess { pid: pid.0 })
    }

    /// [`SdamSystem::malloc`] in a specific process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::malloc`], plus [`MemError::UnknownProcess`] for
    /// a pid this system never returned.
    pub fn malloc_in(
        &mut self,
        pid: ProcessId,
        size: u64,
        mapping: Option<MappingId>,
    ) -> Result<VirtAddr, MemError> {
        let p = self.process_mut(pid)?;
        let va = p.malloc.malloc(size, mapping)?;
        let regions = p.malloc.drain_new_heaps();
        for region in &regions {
            p.aspace
                .mmap_fixed(region.start, region.len, region.mapping)?;
        }
        self.trace_heap_growth(pid, &regions);
        Ok(va)
    }

    /// Records one `mem.heap_grow` event per freshly mapped heap
    /// region (no-op with the `obs` feature off).
    fn trace_heap_growth(&mut self, pid: ProcessId, regions: &[sdam_mem::heap::HeapRegion]) {
        if !OBS_ENABLED {
            return;
        }
        for region in regions {
            self.events.push(
                "mem.heap_grow",
                &[
                    ("pid", u64::from(pid.0)),
                    ("start", region.start.raw()),
                    ("len", region.len),
                    ("mapping", u64::from(region.mapping.0)),
                ],
            );
        }
    }

    /// Allocates guard-isolated (rowhammer-sensitive) memory: the
    /// chunks backing it get free guard chunks on both physical sides,
    /// so no other security domain can hammer adjacent rows — the
    /// paper's §4 extension, end to end.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::malloc`], plus
    /// [`MemError::OutOfPhysicalMemory`] when no isolated chunk exists.
    pub fn malloc_sensitive(
        &mut self,
        size: u64,
        mapping: Option<MappingId>,
    ) -> Result<VirtAddr, MemError> {
        let p = &mut self.processes[0];
        let va = p.malloc.malloc_sensitive(size, mapping)?;
        let regions = p.malloc.drain_new_heaps();
        for region in &regions {
            p.aspace
                .mmap_fixed_with(region.start, region.len, region.mapping, region.sensitive)?;
        }
        self.trace_heap_growth(ProcessId(0), &regions);
        Ok(va)
    }

    /// Number of chunks currently reserved as rowhammer guards.
    pub fn guard_chunks(&self) -> u64 {
        self.phys.guard_chunk_count()
    }

    /// Migrates an allocation to a different address mapping — the
    /// dynamic-adaptation path the paper sketches ("reconfigure free
    /// memory into the desired mapping", §4). Because a chunk's PA→HA
    /// function changes, the data must physically move: the allocation
    /// is reallocated under `new_mapping` and every resident page is
    /// copied (modeled as a fault of the destination page).
    ///
    /// Returns the new virtual address and the number of pages moved —
    /// the cost a runtime would weigh against the expected CLP gain.
    ///
    /// # Errors
    ///
    /// [`MemError::BadAddress`] if `va` is not a live allocation start;
    /// allocator errors for the new allocation.
    pub fn remap_in(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        new_mapping: MappingId,
    ) -> Result<(VirtAddr, u64), MemError> {
        let size = self
            .process_mut(pid)?
            .malloc
            .size_of(va)
            .ok_or(MemError::BadAddress(va))?;
        let new_va = self.malloc_in(pid, size, Some(new_mapping))?;
        // Copy resident pages: each source page that was faulted in
        // faults in (and therefore "receives") its destination page.
        let page = self.page_bytes();
        let mut moved = 0u64;
        let mut off = 0u64;
        while off < size {
            let src_resident = self
                .process_mut(pid)?
                .aspace
                .translate(VirtAddr(va.raw() + off))
                .is_some();
            if src_resident {
                self.touch_in(pid, VirtAddr(new_va.raw() + off))?;
                moved += 1;
            }
            off += page;
        }
        self.process_mut(pid)?.malloc.free(va)?;
        Ok((new_va, moved))
    }

    /// [`SdamSystem::remap_in`] for the primordial process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::remap_in`].
    pub fn remap(
        &mut self,
        va: VirtAddr,
        new_mapping: MappingId,
    ) -> Result<(VirtAddr, u64), MemError> {
        self.remap_in(ProcessId(0), va, new_mapping)
    }

    /// Frees an allocation made with [`SdamSystem::malloc`].
    ///
    /// # Errors
    ///
    /// [`MemError::BadFree`] for invalid pointers.
    pub fn free(&mut self, va: VirtAddr) -> Result<(), MemError> {
        self.processes[0].malloc.free(va)
    }

    /// Translates a virtual address to a physical address, demand-paging
    /// on first touch and forwarding chunk events to the CMT.
    ///
    /// # Errors
    ///
    /// [`MemError::BadAddress`] outside any allocation,
    /// [`MemError::OutOfPhysicalMemory`] when memory is exhausted.
    pub fn touch(&mut self, va: VirtAddr) -> Result<PhysAddr, MemError> {
        self.touch_in(ProcessId(0), va)
    }

    /// [`SdamSystem::touch`] in a specific process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::touch`], plus [`MemError::UnknownProcess`] for
    /// a pid this system never returned.
    pub fn touch_in(&mut self, pid: ProcessId, va: VirtAddr) -> Result<PhysAddr, MemError> {
        let Some(p) = self.processes.get_mut(pid.0 as usize) else {
            return Err(MemError::UnknownProcess { pid: pid.0 });
        };
        let pa = p.aspace.access(va, &mut self.phys)?;
        for ev in p.aspace.drain_events() {
            // The allocator only hands out registered mappings, so the
            // CMT writes cannot fail; surface a failure as the mapping
            // being unknown rather than panicking.
            match ev {
                ChunkEvent::Acquired { chunk, mapping } => {
                    self.cmt
                        .assign_chunk(chunk, mapping)
                        .map_err(|_| MemError::UnknownMapping(mapping))?;
                    if OBS_ENABLED {
                        self.events.push(
                            "cmt.assign_chunk",
                            &[("chunk", chunk), ("mapping", u64::from(mapping.0))],
                        );
                    }
                }
                ChunkEvent::Released { chunk } => {
                    // Back to the default mapping; the chunk is free.
                    self.cmt
                        .assign_chunk(chunk, MappingId::DEFAULT)
                        .map_err(|_| MemError::UnknownMapping(MappingId::DEFAULT))?;
                    if OBS_ENABLED {
                        self.events.push("cmt.release_chunk", &[("chunk", chunk)]);
                    }
                }
            }
        }
        Ok(pa)
    }

    /// Full translation: VA → PA → HA → device coordinates.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::touch`].
    pub fn access(&mut self, va: VirtAddr) -> Result<DecodedAddr, MemError> {
        let pa = self.touch(va)?;
        Ok(self.geometry.decode(self.cmt.translate(pa)))
    }

    /// [`SdamSystem::access`] in a specific process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::access`].
    pub fn access_in(&mut self, pid: ProcessId, va: VirtAddr) -> Result<DecodedAddr, MemError> {
        let pa = self.touch_in(pid, va)?;
        Ok(self.geometry.decode(self.cmt.translate(pa)))
    }

    /// The mapping id of the allocation containing `va`.
    pub fn mapping_of(&self, va: VirtAddr) -> Option<MappingId> {
        self.processes[0].malloc.mapping_of(va)
    }

    /// Demand-paging fault count so far (all processes).
    pub fn page_faults(&self) -> u64 {
        self.processes
            .iter()
            .map(|p| p.aspace.page_fault_count())
            .sum()
    }

    /// Internal fragmentation in stranded pages (paper §4's bound).
    pub fn fragmentation_pages(&self) -> u64 {
        self.phys.internal_fragmentation_pages()
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_bits
    }

    /// The allocation/CMT event trace recorded so far (empty with the
    /// `obs` feature off).
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Merges this system's `mem.*` accumulators — chunk allocator,
    /// every process's malloc, demand-paging faults — and its event
    /// trace into `reg`. Processes fold in spawn order, so the export
    /// is deterministic regardless of how the *machine* side of the
    /// run was parallelized (allocation itself is always serial).
    pub fn export_into(&self, reg: &mut Registry) {
        self.phys.export_into(reg);
        for p in &self.processes {
            p.malloc.export_into(reg);
        }
        reg.incr("mem.page_faults", self.page_faults());
        reg.incr("mem.processes", self.processes.len() as u64);
        reg.events_mut().merge(&self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swap_perm(sys: &SdamSystem, a: usize, b: usize) -> BitPermutation {
        let n = (sys.cmt.chunk_bits() - 6) as usize;
        let mut t: Vec<u32> = (0..n as u32).collect();
        t.swap(a, b);
        BitPermutation::new(6, t).unwrap()
    }

    #[test]
    fn end_to_end_allocation_and_translation() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 8)).unwrap();
        let va = sys.malloc(8192, Some(id)).unwrap();
        let pa = sys.touch(va).unwrap();
        // The frame's chunk is registered to the new mapping in the CMT.
        assert_eq!(sys.cmt().chunk_mapping(pa.chunk_number(21)), id);
        // Translation is consistent when repeated.
        assert_eq!(sys.access(va).unwrap(), sys.access(va).unwrap());
        assert_eq!(sys.page_faults(), 1);
    }

    #[test]
    fn default_and_custom_mappings_coexist() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 1)).unwrap();
        let v_default = sys.malloc(4096, None).unwrap();
        let v_custom = sys.malloc(4096, Some(id)).unwrap();
        let pa_d = sys.touch(v_default).unwrap();
        let pa_c = sys.touch(v_custom).unwrap();
        assert_ne!(pa_d.chunk_number(21), pa_c.chunk_number(21));
        assert_eq!(
            sys.cmt().chunk_mapping(pa_d.chunk_number(21)),
            MappingId::DEFAULT
        );
        assert_eq!(sys.cmt().chunk_mapping(pa_c.chunk_number(21)), id);
    }

    #[test]
    fn stride_mapping_spreads_channels() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let stride = 32u64; // pins one channel under the default
        let perm = sys.permutation_for_stride(stride);
        let id = sys.add_mapping(&perm).unwrap();
        let va = sys.malloc(2 << 20, Some(id)).unwrap();
        let mut channels = std::collections::HashSet::new();
        for i in 0..64u64 {
            let coords = sys.access(VirtAddr(va.raw() + i * stride * 64)).unwrap();
            channels.insert(coords.channel);
        }
        assert!(
            channels.len() >= 16,
            "stride should spread over channels, got {}",
            channels.len()
        );
    }

    #[test]
    fn free_and_realloc() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let va = sys.malloc(4096, None).unwrap();
        sys.free(va).unwrap();
        assert!(sys.free(va).is_err());
        let vb = sys.malloc(4096, None).unwrap();
        assert_eq!(va, vb, "allocation reused");
    }

    #[test]
    fn processes_share_chunk_groups_but_not_address_spaces() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 3)).unwrap();
        let p1 = sys.spawn_process();
        assert_eq!(sys.process_count(), 2);

        // Same-sized allocations in both processes land at the same VA
        // (fresh address spaces)...
        let va0 = sys.malloc_in(super::ProcessId(0), 4096, Some(id)).unwrap();
        let va1 = sys.malloc_in(p1, 4096, Some(id)).unwrap();
        assert_eq!(va0, va1, "independent address spaces start alike");

        // ...but back distinct frames, drawn from the SAME chunk group
        // (paper §4: chunks hold data "from one or more processes").
        let pa0 = sys.touch_in(super::ProcessId(0), va0).unwrap();
        let pa1 = sys.touch_in(p1, va1).unwrap();
        assert_ne!(pa0, pa1, "frames are distinct");
        assert_eq!(
            pa0.chunk_number(21),
            pa1.chunk_number(21),
            "both processes' pages share the mapping's chunk"
        );
        assert_eq!(sys.cmt().chunk_mapping(pa0.chunk_number(21)), id);
    }

    #[test]
    fn mappings_registered_before_spawn_are_visible_after() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let before = sys.add_mapping(&swap_perm(&sys, 1, 2)).unwrap();
        let p1 = sys.spawn_process();
        assert!(sys.malloc_in(p1, 64, Some(before)).is_ok());
        // And mappings registered after the spawn, too.
        let after = sys.add_mapping(&swap_perm(&sys, 2, 3)).unwrap();
        assert!(sys.malloc_in(p1, 64, Some(after)).is_ok());
    }

    #[test]
    fn remap_migrates_resident_pages_to_the_new_mapping() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let m1 = sys.add_mapping(&swap_perm(&sys, 0, 1)).unwrap();
        let m2 = sys.add_mapping(&swap_perm(&sys, 0, 8)).unwrap();
        let va = sys.malloc(8 * 4096, Some(m1)).unwrap();
        // Touch 3 of 8 pages.
        for p in [0u64, 3, 7] {
            sys.touch(VirtAddr(va.raw() + p * 4096)).unwrap();
        }
        let (new_va, moved) = sys.remap(va, m2).unwrap();
        assert_eq!(moved, 3, "only resident pages are copied");
        assert_ne!(new_va, va);
        // The new allocation lives in m2's chunk group.
        let pa = sys.touch(new_va).unwrap();
        assert_eq!(sys.cmt().chunk_mapping(pa.chunk_number(21)), m2);
        // The old allocation is gone.
        assert!(sys.free(va).is_err());
        // Remapping an invalid pointer errors.
        assert!(sys.remap(VirtAddr(12), m1).is_err());
    }

    #[test]
    fn sensitive_allocation_is_guard_isolated_end_to_end() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let secret = sys.malloc_sensitive(4096, None).unwrap();
        let pa = sys.touch(secret).unwrap();
        let chunk = pa.chunk_number(21);
        assert!(sys.guard_chunks() > 0);
        // An ordinary allocation can never land in the adjacent chunks.
        for _ in 0..64 {
            let va = sys.malloc(2 << 20, None).unwrap();
            let pa2 = sys.touch(va).unwrap();
            assert!(
                pa2.chunk_number(21).abs_diff(chunk) != 1,
                "neighbour chunk leaked"
            );
        }
    }

    #[test]
    fn mapping_of_reports_heap_mapping() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 2, 3)).unwrap();
        let va = sys.malloc(128, Some(id)).unwrap();
        assert_eq!(sys.mapping_of(va), Some(id));
        assert_eq!(sys.mapping_of(VirtAddr(0)), None);
    }
}
