//! [`SdamSystem`]: the OS + hardware object a program allocates through.
//!
//! This is the library's main user-facing type. It owns the chunk-based
//! physical allocator, the process address space, the multi-heap malloc,
//! and the hardware CMT, and keeps them consistent: registering a
//! mapping updates both malloc (so a heap exists for it) and the CMT
//! (so the AMU can be configured); a page fault pulls a frame from the
//! right chunk group and, when a fresh chunk is acquired, writes its
//! entry into the CMT.

use sdam_hbm::{DecodedAddr, Geometry};
use sdam_mapping::{BitPermutation, Cmt, MappingId, PhysAddr};
use sdam_mem::heap::MultiHeapMalloc;
use sdam_mem::phys::{ChunkAllocator, ChunkEvent};
use sdam_mem::vma::AddressSpace;
use sdam_mem::{MemError, VirtAddr};
use sdam_obs::{EventRing, Registry, DEFAULT_RING_CAPACITY};

use crate::error::SdamError;
use crate::metrics::OBS_ENABLED;

/// The software-defined-address-mapping system.
///
/// # Example
///
/// ```
/// use sdam::SdamSystem;
/// use sdam_hbm::Geometry;
/// use sdam_mapping::select;
///
/// let geom = Geometry::hbm2_8gb();
/// let mut sys = SdamSystem::new(geom, 21);
///
/// // Register a mapping tuned for a stride-16 structure.
/// let perm = sys.permutation_for_stride(16);
/// let id = sys.add_mapping(&perm)?;
///
/// // Allocate the structure under that mapping and touch it.
/// let va = sys.malloc(1 << 20, Some(id))?;
/// let coords = sys.access(va)?;
/// assert!(coords.channel < geom.num_channels() as u64);
/// # Ok::<(), sdam_mem::MemError>(())
/// ```
/// Identifies a process sharing the system's physical memory and CMT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[derive(Debug)]
struct Process {
    aspace: AddressSpace,
    malloc: MultiHeapMalloc,
}

/// Monotonic counters of processes that have already exited, folded in
/// at teardown so `export_into` stays conservation-safe (a process
/// exiting never makes a `mem.*` accumulator go backwards).
#[derive(Debug, Default)]
struct RetiredCounters {
    page_faults: u64,
    alloc_calls: u64,
    free_calls: u64,
    heaps_created: u64,
    processes_exited: u64,
}

/// The software-defined-address-mapping system: shared physical
/// memory, chunk groups, and CMT, plus one or more processes each with
/// its own address space and mapping-aware heap allocator.
#[derive(Debug)]
pub struct SdamSystem {
    geometry: Geometry,
    phys: ChunkAllocator,
    /// Slot table: `None` marks an exited process whose pid is on
    /// `free_pids` awaiting reuse, so long tenant churn keeps the table
    /// (and every per-pid lookup) bounded by the peak live count.
    processes: Vec<Option<Process>>,
    /// Pids of exited processes, reused LIFO by `spawn_process`.
    free_pids: Vec<u32>,
    cmt: Cmt,
    page_bits: u32,
    registered: Vec<MappingId>,
    retired: RetiredCounters,
    /// Structured allocation/CMT event trace. All pushes happen on the
    /// system's serial mutation paths (`malloc_in`, `touch_in`), so the
    /// order is deterministic by construction; with the `obs` feature
    /// off the ring stays empty.
    events: EventRing,
}

impl SdamSystem {
    /// Builds a system over `geometry` with `2^chunk_bits`-byte chunks
    /// and 4 KB pages.
    ///
    /// # Panics
    ///
    /// Panics if the chunk size does not fit between a page and the
    /// device capacity.
    pub fn new(geometry: Geometry, chunk_bits: u32) -> Self {
        match SdamSystem::try_new(geometry, chunk_bits) {
            Ok(sys) => sys,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`SdamSystem::new`].
    ///
    /// # Errors
    ///
    /// [`SdamError::Cmt`] if the chunk size does not fit between a page
    /// and the device capacity (or exceeds the CMT's crossbar window).
    pub fn try_new(geometry: Geometry, chunk_bits: u32) -> Result<Self, SdamError> {
        let page_bits = 12;
        // The CMT's window check subsumes the allocator's (page < chunk
        // < memory), so validate through it before any construction.
        let cmt = Cmt::try_new(geometry.addr_bits(), chunk_bits)?;
        if chunk_bits <= page_bits {
            return Err(SdamError::Cmt(sdam_mapping::CmtError::InvalidChunkBits {
                chunk_bits,
                phys_bits: geometry.addr_bits(),
            }));
        }
        Ok(SdamSystem {
            geometry,
            phys: ChunkAllocator::new(geometry.addr_bits(), chunk_bits, page_bits),
            processes: vec![Some(Process {
                aspace: AddressSpace::new(page_bits),
                malloc: MultiHeapMalloc::new(page_bits),
            })],
            free_pids: Vec::new(),
            cmt,
            page_bits,
            registered: vec![MappingId::DEFAULT],
            retired: RetiredCounters::default(),
            events: EventRing::with_capacity(if OBS_ENABLED {
                DEFAULT_RING_CAPACITY
            } else {
                0
            }),
        })
    }

    /// Spawns a new process: a fresh address space and heap allocator
    /// that share this system's physical memory, chunk groups, and CMT
    /// (the paper's §4: "the physical memory space ... is globally
    /// shared by all the processes"). Every registered mapping is
    /// visible in the new process. Pids of exited processes are reused
    /// (LIFO), so the process table stays bounded by the peak live
    /// count under tenant churn.
    pub fn spawn_process(&mut self) -> ProcessId {
        let mut malloc = MultiHeapMalloc::new(self.page_bits);
        for &id in &self.registered {
            malloc.register_external(id);
        }
        let process = Process {
            aspace: AddressSpace::new(self.page_bits),
            malloc,
        };
        let pid = if let Some(pid) = self.free_pids.pop() {
            self.processes[pid as usize] = Some(process);
            pid
        } else {
            self.processes.push(Some(process));
            self.processes.len() as u32 - 1
        };
        ProcessId(pid)
    }

    /// Tears a process down: every VMA is unmapped, all resident frames
    /// return to their chunk groups (emptied chunks go back to the
    /// global free list and the CMT reverts them to the default
    /// mapping), and the pid becomes reusable by
    /// [`SdamSystem::spawn_process`]. The process's monotonic counters
    /// fold into the system totals, so `mem.*` accumulators never move
    /// backwards across an exit.
    ///
    /// # Errors
    ///
    /// [`MemError::UnknownProcess`] for a pid that was never spawned or
    /// has already exited.
    pub fn exit_process(&mut self, pid: ProcessId) -> Result<(), MemError> {
        let Some(Some(p)) = self.processes.get_mut(pid.0 as usize) else {
            return Err(MemError::UnknownProcess { pid: pid.0 });
        };
        p.aspace.clear(&mut self.phys)?;
        self.sync_cmt(pid)?;
        let Some(Some(p)) = self.processes.get_mut(pid.0 as usize) else {
            return Err(MemError::UnknownProcess { pid: pid.0 });
        };
        self.retired.page_faults += p.aspace.page_fault_count();
        self.retired.alloc_calls += p.malloc.alloc_calls();
        self.retired.free_calls += p.malloc.free_calls();
        self.retired.heaps_created += p.malloc.heaps_created();
        self.retired.processes_exited += 1;
        self.processes[pid.0 as usize] = None;
        self.free_pids.push(pid.0);
        if OBS_ENABLED {
            self.events
                .push("sys.process_exit", &[("pid", u64::from(pid.0))]);
        }
        Ok(())
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes.iter().flatten().count()
    }

    /// Processes that have exited over the system's lifetime.
    pub fn processes_exited(&self) -> u64 {
        self.retired.processes_exited
    }

    /// The device geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The hardware chunk-mapping table (read-only view).
    pub fn cmt(&self) -> &Cmt {
        &self.cmt
    }

    /// Borrows the CMT for use as a
    /// [`sdam_sys::MappingEngine::Chunked`] engine (cloned, as the
    /// hardware holds its own copy of the table).
    pub fn cmt_snapshot(&self) -> Cmt {
        self.cmt.clone()
    }

    /// The chunk-offset permutation a known stride wants — convenience
    /// wrapper over [`sdam_mapping::select`] windowed to this system's
    /// chunk size.
    pub fn permutation_for_stride(&self, stride_lines: u64) -> BitPermutation {
        let addrs = (0..4096u64).map(|i| i * stride_lines * 64);
        let bfrv = sdam_mapping::BitFlipRateVector::from_addrs(addrs, self.geometry.addr_bits());
        sdam_mapping::select::permutation_for_bfrv_windowed(
            &bfrv,
            self.geometry,
            self.cmt.chunk_bits(),
        )
    }

    /// Registers a new address mapping (the paper's `add_addr_map()`),
    /// configuring both the allocator and the hardware CMT.
    ///
    /// # Errors
    ///
    /// [`MemError::MappingIdsExhausted`] after 255 registrations.
    ///
    /// # Panics
    ///
    /// Panics if the permutation window is not this system's chunk
    /// offset (`[6, chunk_bits)`).
    pub fn add_mapping(&mut self, perm: &BitPermutation) -> Result<MappingId, MemError> {
        match self.try_add_mapping(perm) {
            Ok(id) => Ok(id),
            Err(SdamError::Mem(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`SdamSystem::add_mapping`] — a wrong
    /// permutation window comes back as [`SdamError::Cmt`] instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// [`SdamError::Mem`] ([`MemError::MappingIdsExhausted`]) after 255
    /// registrations; [`SdamError::Cmt`] for a permutation that does not
    /// cover this system's chunk offset.
    pub fn try_add_mapping(&mut self, perm: &BitPermutation) -> Result<MappingId, SdamError> {
        // Check the window before consuming a global id.
        if perm.lo() != 6 || perm.len() as u32 != self.cmt.chunk_bits() - 6 {
            return Err(SdamError::Cmt(sdam_mapping::CmtError::WrongWindow {
                lo: perm.lo(),
                len: perm.len() as u32,
                chunk_bits: self.cmt.chunk_bits(),
            }));
        }
        // Ids are global: the CMT is shared by every process, so the
        // CMT's recycling free list is the single id authority. Ids
        // released by `remove_mapping` are reused in O(1).
        let id = self
            .cmt
            .allocate_id()
            .map_err(|_| SdamError::Mem(MemError::MappingIdsExhausted))?;
        for p in self.processes.iter_mut().flatten() {
            p.malloc.register_external(id);
        }
        self.registered.push(id);
        self.cmt.try_register(id, perm)?;
        Ok(id)
    }

    /// Removes a mapping registered with [`SdamSystem::add_mapping`],
    /// recycling its id: the mapping's (empty) heaps are retired in
    /// every process, its chunk group must already have drained back to
    /// the free list, and the CMT slot is unregistered — after which
    /// [`SdamSystem::add_mapping`] reuses the id for the next tenant.
    ///
    /// # Errors
    ///
    /// [`MemError::UnknownMapping`] for the default id or one never
    /// registered; [`MemError::MappingInUse`] while any process still
    /// holds live allocations under the mapping or chunks remain
    /// assigned to it (free the allocations and unmap the heaps first —
    /// [`SdamSystem::exit_process`] does both for a whole tenant).
    pub fn remove_mapping(&mut self, id: MappingId) -> Result<(), MemError> {
        if id == MappingId::DEFAULT || !self.registered.contains(&id) {
            return Err(MemError::UnknownMapping(id));
        }
        // Pre-check every process before mutating any, so a failure
        // leaves the system untouched.
        for p in self.processes.iter().flatten() {
            if p.malloc.is_registered(id) && p.malloc.live_bytes(id) > 0 {
                return Err(MemError::MappingInUse(id));
            }
        }
        // Unmap the mapping's (allocation-free) heap VMAs so resident
        // pages of freed allocations release their chunks.
        for pid in 0..self.processes.len() as u32 {
            let Some(Some(p)) = self.processes.get_mut(pid as usize) else {
                continue;
            };
            let starts: Vec<VirtAddr> = p
                .aspace
                .areas()
                .filter(|a| a.mapping == id)
                .map(|a| a.start)
                .collect();
            for start in starts {
                p.aspace.munmap(start, &mut self.phys)?;
            }
            self.sync_cmt(ProcessId(pid))?;
            let Some(Some(p)) = self.processes.get_mut(pid as usize) else {
                continue;
            };
            if p.malloc.is_registered(id) {
                p.malloc.remove_addr_map(id)?;
            }
        }
        // All chunks drained: the CMT slot can retire and recycle.
        self.cmt.unregister(id).map_err(|e| match e {
            sdam_mapping::CmtError::MappingInUse { id, .. } => MemError::MappingInUse(id),
            _ => MemError::UnknownMapping(id),
        })?;
        self.registered.retain(|&m| m != id);
        if OBS_ENABLED {
            self.events
                .push("sys.mapping_removed", &[("mapping", u64::from(id.0))]);
        }
        Ok(())
    }

    /// Allocates `size` bytes under `mapping` (default mapping when
    /// `None`), wiring any newly created heap to a VMA.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors ([`MemError`]).
    pub fn malloc(&mut self, size: u64, mapping: Option<MappingId>) -> Result<VirtAddr, MemError> {
        self.malloc_in(ProcessId(0), size, mapping)
    }

    /// Looks up a process, rejecting pids this system never handed out
    /// and pids whose process has exited.
    fn process_mut(&mut self, pid: ProcessId) -> Result<&mut Process, MemError> {
        self.processes
            .get_mut(pid.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(MemError::UnknownProcess { pid: pid.0 })
    }

    /// [`SdamSystem::malloc`] in a specific process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::malloc`], plus [`MemError::UnknownProcess`] for
    /// a pid this system never returned.
    pub fn malloc_in(
        &mut self,
        pid: ProcessId,
        size: u64,
        mapping: Option<MappingId>,
    ) -> Result<VirtAddr, MemError> {
        let p = self.process_mut(pid)?;
        let va = p.malloc.malloc(size, mapping)?;
        let regions = p.malloc.drain_new_heaps();
        for region in &regions {
            p.aspace
                .mmap_fixed(region.start, region.len, region.mapping)?;
        }
        self.trace_heap_growth(pid, &regions);
        Ok(va)
    }

    /// Records one `mem.heap_grow` event per freshly mapped heap
    /// region (no-op with the `obs` feature off).
    fn trace_heap_growth(&mut self, pid: ProcessId, regions: &[sdam_mem::heap::HeapRegion]) {
        if !OBS_ENABLED {
            return;
        }
        for region in regions {
            self.events.push(
                "mem.heap_grow",
                &[
                    ("pid", u64::from(pid.0)),
                    ("start", region.start.raw()),
                    ("len", region.len),
                    ("mapping", u64::from(region.mapping.0)),
                ],
            );
        }
    }

    /// Allocates guard-isolated (rowhammer-sensitive) memory: the
    /// chunks backing it get free guard chunks on both physical sides,
    /// so no other security domain can hammer adjacent rows — the
    /// paper's §4 extension, end to end.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::malloc`], plus
    /// [`MemError::OutOfPhysicalMemory`] when no isolated chunk exists.
    pub fn malloc_sensitive(
        &mut self,
        size: u64,
        mapping: Option<MappingId>,
    ) -> Result<VirtAddr, MemError> {
        let p = self.process_mut(ProcessId(0))?;
        let va = p.malloc.malloc_sensitive(size, mapping)?;
        let regions = p.malloc.drain_new_heaps();
        for region in &regions {
            p.aspace
                .mmap_fixed_with(region.start, region.len, region.mapping, region.sensitive)?;
        }
        self.trace_heap_growth(ProcessId(0), &regions);
        Ok(va)
    }

    /// Number of chunks currently reserved as rowhammer guards.
    pub fn guard_chunks(&self) -> u64 {
        self.phys.guard_chunk_count()
    }

    /// Migrates an allocation to a different address mapping — the
    /// dynamic-adaptation path the paper sketches ("reconfigure free
    /// memory into the desired mapping", §4). Because a chunk's PA→HA
    /// function changes, the data must physically move: the allocation
    /// is reallocated under `new_mapping` and every resident page is
    /// copied (modeled as a fault of the destination page).
    ///
    /// Returns the new virtual address and the number of pages moved —
    /// the cost a runtime would weigh against the expected CLP gain.
    ///
    /// # Errors
    ///
    /// [`MemError::BadAddress`] if `va` is not a live allocation start;
    /// allocator errors for the new allocation.
    pub fn remap_in(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        new_mapping: MappingId,
    ) -> Result<(VirtAddr, u64), MemError> {
        let size = self
            .process_mut(pid)?
            .malloc
            .size_of(va)
            .ok_or(MemError::BadAddress(va))?;
        let new_va = self.malloc_in(pid, size, Some(new_mapping))?;
        // Copy resident pages: each source page that was faulted in
        // faults in (and therefore "receives") its destination page.
        let page = self.page_bytes();
        let mut moved = 0u64;
        let mut off = 0u64;
        while off < size {
            let src_resident = self
                .process_mut(pid)?
                .aspace
                .translate(VirtAddr(va.raw() + off))
                .is_some();
            if src_resident {
                self.touch_in(pid, VirtAddr(new_va.raw() + off))?;
                moved += 1;
            }
            off += page;
        }
        self.process_mut(pid)?.malloc.free(va)?;
        Ok((new_va, moved))
    }

    /// [`SdamSystem::remap_in`] for the primordial process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::remap_in`].
    pub fn remap(
        &mut self,
        va: VirtAddr,
        new_mapping: MappingId,
    ) -> Result<(VirtAddr, u64), MemError> {
        self.remap_in(ProcessId(0), va, new_mapping)
    }

    /// Frees an allocation made with [`SdamSystem::malloc`].
    ///
    /// # Errors
    ///
    /// [`MemError::BadFree`] for invalid pointers.
    pub fn free(&mut self, va: VirtAddr) -> Result<(), MemError> {
        self.free_in(ProcessId(0), va)
    }

    /// [`SdamSystem::free`] in a specific process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::free`], plus [`MemError::UnknownProcess`] for a
    /// pid this system never returned.
    pub fn free_in(&mut self, pid: ProcessId, va: VirtAddr) -> Result<(), MemError> {
        self.process_mut(pid)?.malloc.free(va)
    }

    /// Maps an anonymous region of `len` bytes under `mapping` in a
    /// specific process (the raw `mmap` path, below malloc). Pages are
    /// demand-paged on first touch, exactly like heap pages.
    ///
    /// # Errors
    ///
    /// [`MemError::UnknownMapping`] for an unregistered mapping,
    /// [`MemError::InvalidSize`] for zero length, plus
    /// [`MemError::UnknownProcess`].
    pub fn mmap_in(
        &mut self,
        pid: ProcessId,
        len: u64,
        mapping: MappingId,
    ) -> Result<VirtAddr, MemError> {
        if !self.registered.contains(&mapping) {
            return Err(MemError::UnknownMapping(mapping));
        }
        self.process_mut(pid)?.aspace.mmap(len, mapping)
    }

    /// Unmaps the area starting at `start` in a specific process,
    /// releasing resident frames (and emptied chunks) immediately.
    ///
    /// # Errors
    ///
    /// [`MemError::BadAddress`] if no area starts there, plus
    /// [`MemError::UnknownProcess`].
    pub fn munmap_in(&mut self, pid: ProcessId, start: VirtAddr) -> Result<(), MemError> {
        let Some(Some(p)) = self.processes.get_mut(pid.0 as usize) else {
            return Err(MemError::UnknownProcess { pid: pid.0 });
        };
        p.aspace.munmap(start, &mut self.phys)?;
        self.sync_cmt(pid)
    }

    /// Translates a virtual address to a physical address, demand-paging
    /// on first touch and forwarding chunk events to the CMT.
    ///
    /// # Errors
    ///
    /// [`MemError::BadAddress`] outside any allocation,
    /// [`MemError::OutOfPhysicalMemory`] when memory is exhausted.
    pub fn touch(&mut self, va: VirtAddr) -> Result<PhysAddr, MemError> {
        self.touch_in(ProcessId(0), va)
    }

    /// [`SdamSystem::touch`] in a specific process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::touch`], plus [`MemError::UnknownProcess`] for
    /// a pid this system never returned.
    pub fn touch_in(&mut self, pid: ProcessId, va: VirtAddr) -> Result<PhysAddr, MemError> {
        let Some(Some(p)) = self.processes.get_mut(pid.0 as usize) else {
            return Err(MemError::UnknownProcess { pid: pid.0 });
        };
        let pa = p.aspace.access(va, &mut self.phys)?;
        self.sync_cmt(pid)?;
        Ok(pa)
    }

    /// Drains a process's queued chunk events into the CMT — shared by
    /// every path that can acquire or release chunks (faults, unmaps,
    /// process exit, mapping removal).
    fn sync_cmt(&mut self, pid: ProcessId) -> Result<(), MemError> {
        let Some(Some(p)) = self.processes.get_mut(pid.0 as usize) else {
            return Err(MemError::UnknownProcess { pid: pid.0 });
        };
        for ev in p.aspace.drain_events() {
            // The allocator only hands out registered mappings, so the
            // CMT writes cannot fail; surface a failure as the mapping
            // being unknown rather than panicking.
            match ev {
                ChunkEvent::Acquired { chunk, mapping } => {
                    self.cmt
                        .assign_chunk(chunk, mapping)
                        .map_err(|_| MemError::UnknownMapping(mapping))?;
                    if OBS_ENABLED {
                        self.events.push(
                            "cmt.assign_chunk",
                            &[("chunk", chunk), ("mapping", u64::from(mapping.0))],
                        );
                    }
                }
                ChunkEvent::Released { chunk } => {
                    // Back to the default mapping; the chunk is free.
                    self.cmt
                        .assign_chunk(chunk, MappingId::DEFAULT)
                        .map_err(|_| MemError::UnknownMapping(MappingId::DEFAULT))?;
                    if OBS_ENABLED {
                        self.events.push("cmt.release_chunk", &[("chunk", chunk)]);
                    }
                }
            }
        }
        Ok(())
    }

    /// Full translation: VA → PA → HA → device coordinates.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::touch`].
    pub fn access(&mut self, va: VirtAddr) -> Result<DecodedAddr, MemError> {
        let pa = self.touch(va)?;
        Ok(self.geometry.decode(self.cmt.translate(pa)))
    }

    /// [`SdamSystem::access`] in a specific process.
    ///
    /// # Errors
    ///
    /// As [`SdamSystem::access`].
    pub fn access_in(&mut self, pid: ProcessId, va: VirtAddr) -> Result<DecodedAddr, MemError> {
        let pa = self.touch_in(pid, va)?;
        Ok(self.geometry.decode(self.cmt.translate(pa)))
    }

    /// The mapping id of the allocation containing `va`.
    pub fn mapping_of(&self, va: VirtAddr) -> Option<MappingId> {
        self.processes[0].as_ref()?.malloc.mapping_of(va)
    }

    /// Demand-paging fault count so far (live processes plus every
    /// process that has exited).
    pub fn page_faults(&self) -> u64 {
        self.retired.page_faults
            + self
                .processes
                .iter()
                .flatten()
                .map(|p| p.aspace.page_fault_count())
                .sum::<u64>()
    }

    /// Internal fragmentation in stranded pages (paper §4's bound).
    pub fn fragmentation_pages(&self) -> u64 {
        self.phys.internal_fragmentation_pages()
    }

    /// Fragmentation read straight off the flat allocator columns:
    /// free-list length, longest contiguous free run, guard count,
    /// stranded pages.
    pub fn fragmentation_stats(&self) -> sdam_mem::phys::FragmentationStats {
        self.phys.fragmentation_stats()
    }

    /// Chunks ever claimed from the global free list.
    pub fn chunks_claimed(&self) -> u64 {
        self.phys.chunks_claimed()
    }

    /// Chunks ever released back to the global free list.
    pub fn chunks_released(&self) -> u64 {
        self.phys.chunks_released()
    }

    /// Chunks currently held by some chunk group. The conservation
    /// identity `chunks_claimed() - chunks_released() == in_use_chunks()`
    /// holds at all times.
    pub fn in_use_chunks(&self) -> u64 {
        self.phys.in_use_chunks()
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_bits
    }

    /// The allocation/CMT event trace recorded so far (empty with the
    /// `obs` feature off).
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Merges this system's `mem.*` accumulators — chunk allocator,
    /// every process's malloc, demand-paging faults — and its event
    /// trace into `reg`. Processes fold in spawn order, so the export
    /// is deterministic regardless of how the *machine* side of the
    /// run was parallelized (allocation itself is always serial).
    pub fn export_into(&self, reg: &mut Registry) {
        self.phys.export_into(reg);
        for p in self.processes.iter().flatten() {
            p.malloc.export_into(reg);
        }
        // Exited processes folded in, so the accumulators stay
        // monotonic across tenant churn.
        reg.incr("mem.alloc_calls", self.retired.alloc_calls);
        reg.incr("mem.free_calls", self.retired.free_calls);
        reg.incr("mem.heaps_created", self.retired.heaps_created);
        reg.incr("mem.page_faults", self.page_faults());
        reg.incr("mem.processes", self.process_count() as u64);
        reg.events_mut().merge(&self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swap_perm(sys: &SdamSystem, a: usize, b: usize) -> BitPermutation {
        let n = (sys.cmt.chunk_bits() - 6) as usize;
        let mut t: Vec<u32> = (0..n as u32).collect();
        t.swap(a, b);
        BitPermutation::new(6, t).unwrap()
    }

    #[test]
    fn end_to_end_allocation_and_translation() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 8)).unwrap();
        let va = sys.malloc(8192, Some(id)).unwrap();
        let pa = sys.touch(va).unwrap();
        // The frame's chunk is registered to the new mapping in the CMT.
        assert_eq!(sys.cmt().chunk_mapping(pa.chunk_number(21)), id);
        // Translation is consistent when repeated.
        assert_eq!(sys.access(va).unwrap(), sys.access(va).unwrap());
        assert_eq!(sys.page_faults(), 1);
    }

    #[test]
    fn default_and_custom_mappings_coexist() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 1)).unwrap();
        let v_default = sys.malloc(4096, None).unwrap();
        let v_custom = sys.malloc(4096, Some(id)).unwrap();
        let pa_d = sys.touch(v_default).unwrap();
        let pa_c = sys.touch(v_custom).unwrap();
        assert_ne!(pa_d.chunk_number(21), pa_c.chunk_number(21));
        assert_eq!(
            sys.cmt().chunk_mapping(pa_d.chunk_number(21)),
            MappingId::DEFAULT
        );
        assert_eq!(sys.cmt().chunk_mapping(pa_c.chunk_number(21)), id);
    }

    #[test]
    fn stride_mapping_spreads_channels() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let stride = 32u64; // pins one channel under the default
        let perm = sys.permutation_for_stride(stride);
        let id = sys.add_mapping(&perm).unwrap();
        let va = sys.malloc(2 << 20, Some(id)).unwrap();
        let mut channels = std::collections::HashSet::new();
        for i in 0..64u64 {
            let coords = sys.access(VirtAddr(va.raw() + i * stride * 64)).unwrap();
            channels.insert(coords.channel);
        }
        assert!(
            channels.len() >= 16,
            "stride should spread over channels, got {}",
            channels.len()
        );
    }

    #[test]
    fn free_and_realloc() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let va = sys.malloc(4096, None).unwrap();
        sys.free(va).unwrap();
        assert!(sys.free(va).is_err());
        let vb = sys.malloc(4096, None).unwrap();
        assert_eq!(va, vb, "allocation reused");
    }

    #[test]
    fn processes_share_chunk_groups_but_not_address_spaces() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 3)).unwrap();
        let p1 = sys.spawn_process();
        assert_eq!(sys.process_count(), 2);

        // Same-sized allocations in both processes land at the same VA
        // (fresh address spaces)...
        let va0 = sys.malloc_in(super::ProcessId(0), 4096, Some(id)).unwrap();
        let va1 = sys.malloc_in(p1, 4096, Some(id)).unwrap();
        assert_eq!(va0, va1, "independent address spaces start alike");

        // ...but back distinct frames, drawn from the SAME chunk group
        // (paper §4: chunks hold data "from one or more processes").
        let pa0 = sys.touch_in(super::ProcessId(0), va0).unwrap();
        let pa1 = sys.touch_in(p1, va1).unwrap();
        assert_ne!(pa0, pa1, "frames are distinct");
        assert_eq!(
            pa0.chunk_number(21),
            pa1.chunk_number(21),
            "both processes' pages share the mapping's chunk"
        );
        assert_eq!(sys.cmt().chunk_mapping(pa0.chunk_number(21)), id);
    }

    #[test]
    fn mappings_registered_before_spawn_are_visible_after() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let before = sys.add_mapping(&swap_perm(&sys, 1, 2)).unwrap();
        let p1 = sys.spawn_process();
        assert!(sys.malloc_in(p1, 64, Some(before)).is_ok());
        // And mappings registered after the spawn, too.
        let after = sys.add_mapping(&swap_perm(&sys, 2, 3)).unwrap();
        assert!(sys.malloc_in(p1, 64, Some(after)).is_ok());
    }

    #[test]
    fn remap_migrates_resident_pages_to_the_new_mapping() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let m1 = sys.add_mapping(&swap_perm(&sys, 0, 1)).unwrap();
        let m2 = sys.add_mapping(&swap_perm(&sys, 0, 8)).unwrap();
        let va = sys.malloc(8 * 4096, Some(m1)).unwrap();
        // Touch 3 of 8 pages.
        for p in [0u64, 3, 7] {
            sys.touch(VirtAddr(va.raw() + p * 4096)).unwrap();
        }
        let (new_va, moved) = sys.remap(va, m2).unwrap();
        assert_eq!(moved, 3, "only resident pages are copied");
        assert_ne!(new_va, va);
        // The new allocation lives in m2's chunk group.
        let pa = sys.touch(new_va).unwrap();
        assert_eq!(sys.cmt().chunk_mapping(pa.chunk_number(21)), m2);
        // The old allocation is gone.
        assert!(sys.free(va).is_err());
        // Remapping an invalid pointer errors.
        assert!(sys.remap(VirtAddr(12), m1).is_err());
    }

    #[test]
    fn sensitive_allocation_is_guard_isolated_end_to_end() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let secret = sys.malloc_sensitive(4096, None).unwrap();
        let pa = sys.touch(secret).unwrap();
        let chunk = pa.chunk_number(21);
        assert!(sys.guard_chunks() > 0);
        // An ordinary allocation can never land in the adjacent chunks.
        for _ in 0..64 {
            let va = sys.malloc(2 << 20, None).unwrap();
            let pa2 = sys.touch(va).unwrap();
            assert!(
                pa2.chunk_number(21).abs_diff(chunk) != 1,
                "neighbour chunk leaked"
            );
        }
    }

    #[test]
    fn exit_process_releases_chunks_and_recycles_pids() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 2)).unwrap();
        let free_before = sys.fragmentation_stats().free_chunks;
        let p1 = sys.spawn_process();
        let va = sys.malloc_in(p1, 64 * 4096, Some(id)).unwrap();
        for page in 0..64u64 {
            sys.touch_in(p1, VirtAddr(va.raw() + page * 4096)).unwrap();
        }
        assert!(sys.in_use_chunks() > 0);
        let faults_before_exit = sys.page_faults();
        sys.exit_process(p1).unwrap();
        // All the tenant's chunks drained back to the free list, the
        // conservation identity holds, and the counters survive.
        assert_eq!(sys.fragmentation_stats().free_chunks, free_before);
        assert_eq!(sys.chunks_claimed() - sys.chunks_released(), 0);
        assert_eq!(sys.page_faults(), faults_before_exit);
        assert_eq!(sys.process_count(), 1);
        assert_eq!(sys.processes_exited(), 1);
        // Dead pid rejected everywhere; the slot is then reused.
        assert!(matches!(
            sys.malloc_in(p1, 64, None),
            Err(MemError::UnknownProcess { .. })
        ));
        assert!(sys.exit_process(p1).is_err());
        let p2 = sys.spawn_process();
        assert_eq!(p2, p1, "pid slot recycled");
        assert!(sys.malloc_in(p2, 64, Some(id)).is_ok());
    }

    #[test]
    fn remove_mapping_recycles_the_global_id() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 0, 2)).unwrap();
        let va = sys.malloc(4096, Some(id)).unwrap();
        sys.touch(va).unwrap();
        // Live allocation blocks removal.
        assert_eq!(
            sys.remove_mapping(id).unwrap_err(),
            MemError::MappingInUse(id)
        );
        sys.free(va).unwrap();
        // Freed but still resident: removal unmaps the empty heap and
        // drains the chunk group.
        sys.remove_mapping(id).unwrap();
        assert_eq!(sys.in_use_chunks(), 0);
        assert!(matches!(
            sys.malloc(64, Some(id)),
            Err(MemError::UnknownMapping(_))
        ));
        // The id recycles for the next tenant's mapping.
        let id2 = sys.add_mapping(&swap_perm(&sys, 0, 3)).unwrap();
        assert_eq!(id2, id);
        // Guards: default and unknown ids are rejected.
        assert!(sys.remove_mapping(MappingId::DEFAULT).is_err());
        assert!(sys.remove_mapping(MappingId(200)).is_err());
    }

    #[test]
    fn mapping_churn_never_exhausts_ids() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        for round in 0..600usize {
            let id = sys
                .add_mapping(&swap_perm(&sys, round % 14, (round + 1) % 14 + 1))
                .unwrap();
            let pid = sys.spawn_process();
            let va = sys.malloc_in(pid, 8192, Some(id)).unwrap();
            sys.touch_in(pid, va).unwrap();
            sys.exit_process(pid).unwrap();
            sys.remove_mapping(id).unwrap();
        }
        assert_eq!(sys.process_count(), 1);
        assert_eq!(sys.in_use_chunks(), 0);
        assert_eq!(sys.processes_exited(), 600);
    }

    #[test]
    fn mmap_munmap_lifecycle_in_process() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 1, 3)).unwrap();
        let pid = sys.spawn_process();
        let va = sys.mmap_in(pid, 16 * 4096, id).unwrap();
        sys.touch_in(pid, va).unwrap();
        assert!(sys.in_use_chunks() > 0);
        sys.munmap_in(pid, va).unwrap();
        assert_eq!(sys.in_use_chunks(), 0);
        assert!(sys.touch_in(pid, va).is_err(), "unmapped range faults");
        // Unknown mapping and bad addresses are rejected.
        assert!(sys.mmap_in(pid, 4096, MappingId(99)).is_err());
        assert!(sys.munmap_in(pid, VirtAddr(42)).is_err());
    }

    #[test]
    fn mapping_of_reports_heap_mapping() {
        let mut sys = SdamSystem::new(Geometry::hbm2_8gb(), 21);
        let id = sys.add_mapping(&swap_perm(&sys, 2, 3)).unwrap();
        let va = sys.malloc(128, Some(id)).unwrap();
        assert_eq!(sys.mapping_of(va), Some(id));
        assert_eq!(sys.mapping_of(VirtAddr(0)), None);
    }
}
