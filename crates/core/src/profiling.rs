//! Profiling runs and mapping selection (paper §6.2).
//!
//! Profiling executes the workload's *training* input on the baseline
//! system (default mapping everywhere), collects the physical-address
//! trace, attributes it to variables, and reduces it to per-variable
//! bit-flip-rate vectors. Selection then turns those BFRVs into AMU
//! configurations according to the active [`SystemConfig`]:
//! one global shuffle (BS+BSM), one per application (SDM+BSM), or one
//! per K-Means / DL-assisted cluster of variables (SDM+BSM+ML / +DL).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sdam_mapping::{select, BfrvAccumulator, BitFlipRateVector, BitPermutation, HashMapping};
use sdam_trace::{profile, Trace, VariableId};
use sdam_workloads::Workload;

use crate::config::{Experiment, SystemConfig};
use crate::error::SdamError;
use crate::system::SdamSystem;

/// The product of a profiling run.
#[derive(Debug, Clone)]
pub struct ProfileData {
    /// Aggregate BFRV of the whole physical-address trace.
    pub aggregate: BitFlipRateVector,
    /// Major variables (80 % of references), hottest first.
    pub major: Vec<VariableId>,
    /// Per-major-variable BFRVs.
    pub bfrvs: BTreeMap<VariableId, BitFlipRateVector>,
    /// Per-major-variable physical address streams (inputs to the DL
    /// path).
    pub pa_streams: BTreeMap<VariableId, Vec<u64>>,
}

/// Byte span of each variable in a trace: `(min_addr, len)`.
pub fn variable_spans(trace: &Trace) -> BTreeMap<VariableId, (u64, u64)> {
    let mut spans: BTreeMap<VariableId, (u64, u64)> = BTreeMap::new();
    for a in trace.iter() {
        let e = spans.entry(a.variable).or_insert((a.addr, a.addr + 64));
        e.0 = e.0.min(a.addr);
        e.1 = e.1.max(a.addr + 64);
    }
    spans
        .into_iter()
        .map(|(v, (lo, hi))| (v, (lo, hi - lo)))
        .collect()
}

/// Translates a workload trace to physical addresses by allocating every
/// variable on `sys` under the given per-variable mapping ids
/// (default mapping when absent) and demand-paging as the trace touches
/// memory.
///
/// # Panics
///
/// Panics if physical memory is exhausted (the experiment scales are
/// chosen so it never is).
pub fn materialize(
    trace: &Trace,
    sys: &mut SdamSystem,
    var_mapping: &BTreeMap<VariableId, sdam_mapping::MappingId>,
) -> Trace {
    materialize_in(trace, sys, crate::ProcessId(0), var_mapping)
}

/// [`materialize`] into a specific process of the system (the co-run
/// path: several workloads share the physical memory but not the
/// address space).
///
/// # Panics
///
/// As [`materialize`].
pub fn materialize_in(
    trace: &Trace,
    sys: &mut SdamSystem,
    pid: crate::ProcessId,
    var_mapping: &BTreeMap<VariableId, sdam_mapping::MappingId>,
) -> Trace {
    match try_materialize_in(trace, sys, pid, var_mapping) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible twin of [`materialize_in`].
///
/// # Errors
///
/// Propagates allocator errors — most importantly
/// [`sdam_mem::MemError::OutOfPhysicalMemory`] when the workload's
/// footprint exceeds the configured geometry.
pub fn try_materialize_in(
    trace: &Trace,
    sys: &mut SdamSystem,
    pid: crate::ProcessId,
    var_mapping: &BTreeMap<VariableId, sdam_mapping::MappingId>,
) -> Result<Trace, sdam_mem::MemError> {
    let spans = variable_spans(trace);
    let mut bases: BTreeMap<VariableId, u64> = BTreeMap::new();
    for (&v, &(_, len)) in &spans {
        let id = var_mapping.get(&v).copied();
        let va = sys.malloc_in(pid, len, id)?;
        bases.insert(v, va.raw());
    }
    let mut out = Trace::with_capacity(trace.len());
    for a in trace.iter() {
        let (lo, _) = spans[&a.variable];
        let va = bases[&a.variable] + (a.addr - lo);
        let pa = sys.touch_in(pid, sdam_mem::VirtAddr(va))?;
        out.push(sdam_trace::MemAccess {
            addr: pa.raw(),
            ..*a
        });
    }
    Ok(out)
}

/// Runs the paper's two-pass profiling on the training input.
///
/// **Pass 1** materializes the trace on the baseline system (everything
/// on the default mapping, shared chunks) and identifies the major
/// variables. The aggregate BFRV comes from this pass — it is the
/// physical-address stream a *global* mapping (BS+BSM) will actually
/// see, interleaved paging and all.
///
/// **Pass 2** re-runs allocation with every major variable segregated
/// onto its own chunk group (the paper's preloaded-malloc pass, which
/// intercepts allocations per call stack). Within its own chunk group a
/// variable's pages are physically contiguous in fault order, so its
/// per-variable BFRV reflects the pattern SDAM's allocator will
/// reproduce at run time — without segregation, demand paging scrambles
/// every bit above the page offset.
pub fn profile_on_baseline(workload: &dyn Workload, exp: &Experiment) -> ProfileData {
    match try_profile_on_baseline(workload, exp) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible twin of [`profile_on_baseline`].
///
/// # Errors
///
/// [`SdamError::Mem`] when the training input does not fit the
/// configured geometry; [`SdamError::Cmt`] for an invalid chunk size.
pub fn try_profile_on_baseline(
    workload: &dyn Workload,
    exp: &Experiment,
) -> Result<ProfileData, SdamError> {
    let train = workload.generate(exp.scale.with_seed(exp.profile_seed));
    let width = exp.geometry.addr_bits();

    // Pass 1: baseline materialization — aggregate profile + majors.
    let mut sys = SdamSystem::try_new(exp.geometry, exp.chunk_bits)?;
    let pa_trace = try_materialize_in(&train, &mut sys, crate::ProcessId(0), &BTreeMap::new())?;
    let aggregate = BitFlipRateVector::from_addrs(pa_trace.addrs(), width);
    let major = profile::major_variables(&pa_trace, 0.8);

    // Pass 2: segregated materialization — per-variable profiles.
    let mut sys2 = SdamSystem::try_new(exp.geometry, exp.chunk_bits)?;
    let identity = BitPermutation::identity(6, (exp.chunk_bits - 6) as usize);
    let mut var_mapping = BTreeMap::new();
    for &v in &major {
        // When an application has more major variables than mapping ids
        // (never the case in the paper's Table 1), the overflow shares
        // the last id.
        match sys2.try_add_mapping(&identity) {
            Ok(id) => {
                var_mapping.insert(v, id);
            }
            Err(SdamError::Mem(sdam_mem::MemError::MappingIdsExhausted)) => {
                let Some(&last) = var_mapping.values().last() else {
                    return Err(sdam_mem::MemError::MappingIdsExhausted.into());
                };
                var_mapping.insert(v, last);
            }
            Err(e) => return Err(e),
        }
    }
    let segregated = try_materialize_in(&train, &mut sys2, crate::ProcessId(0), &var_mapping)?;

    // Fused single pass: one walk of the segregated trace feeds every
    // major variable's streaming BFRV accumulator and its PA stream
    // (needed by the DL path), instead of one full-trace `addrs_of`
    // scan per variable.
    let mut accs: BTreeMap<VariableId, (BfrvAccumulator, Vec<u64>)> = major
        .iter()
        .map(|&v| (v, (BfrvAccumulator::new(width), Vec::new())))
        .collect();
    for a in segregated.iter() {
        if let Some((acc, stream)) = accs.get_mut(&a.variable) {
            acc.push(a.addr);
            stream.push(a.addr);
        }
    }
    let mut bfrvs = BTreeMap::new();
    let mut pa_streams = BTreeMap::new();
    for (v, (acc, stream)) in accs {
        bfrvs.insert(v, acc.finish());
        pa_streams.insert(v, stream);
    }
    Ok(ProfileData {
        aggregate,
        major,
        bfrvs,
        pa_streams,
    })
}

/// A profile with no samples and no major variables — what
/// configurations that skip profiling select their mappings from.
pub fn empty_profile(exp: &Experiment) -> ProfileData {
    ProfileData {
        aggregate: BitFlipRateVector::from_addrs(std::iter::empty(), exp.geometry.addr_bits()),
        major: Vec::new(),
        bfrvs: BTreeMap::new(),
        pa_streams: BTreeMap::new(),
    }
}

/// The mapping plan a configuration produces.
#[derive(Debug, Clone)]
pub enum Selection {
    /// The boot-time default (identity) mapping for everything.
    GlobalIdentity,
    /// One global bit-shuffle over the full address.
    GlobalShuffle(sdam_mapping::BitShuffleMapping),
    /// One global XOR hash.
    GlobalHash(HashMapping),
    /// SDAM: chunk-scoped permutations plus a variable→permutation map.
    Sdam {
        /// Distinct chunk-offset permutations (one per mapping id).
        perms: Vec<BitPermutation>,
        /// Which permutation each variable uses (variables absent here
        /// stay on the default mapping).
        assignment: BTreeMap<VariableId, usize>,
    },
}

/// Result of selection, with the profiling/learning cost (the paper's
/// Fig. 13 metric).
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The plan.
    pub selection: Selection,
    /// Wall-clock time spent in clustering / training.
    pub learning_time: Duration,
}

/// Selects mappings for a configuration from profile data.
///
/// # Panics
///
/// Panics if a profiling-dependent configuration is given an empty
/// profile (no major variables).
pub fn select_mappings(
    config: SystemConfig,
    data: &ProfileData,
    exp: &Experiment,
) -> SelectionOutcome {
    match try_select_mappings(config, data, exp) {
        Ok(out) => out,
        // Keep the historical wording: tooling greps for it.
        Err(SdamError::EmptyProfile) => panic!("profiling found no major variables"),
        Err(e) => panic!("{e}"),
    }
}

/// Fallible twin of [`select_mappings`].
///
/// # Errors
///
/// [`SdamError::EmptyProfile`] when a profiling-dependent configuration
/// is given a profile with no major variables.
pub fn try_select_mappings(
    config: SystemConfig,
    data: &ProfileData,
    exp: &Experiment,
) -> Result<SelectionOutcome, SdamError> {
    select_impl(config, data, exp, None)
}

/// [`try_select_mappings`] with the trained DL clustering memoized in
/// `cache` under [`crate::stage::embedding_key`] (built from
/// `profile_key`). Identical results to the uncached path — a hit just
/// skips retraining the autoencoder, which dominates DL selection cost.
///
/// # Errors
///
/// As [`try_select_mappings`].
pub fn try_select_mappings_cached(
    config: SystemConfig,
    data: &ProfileData,
    exp: &Experiment,
    cache: &crate::stage::StageCache,
    profile_key: &str,
) -> Result<SelectionOutcome, SdamError> {
    select_impl(config, data, exp, Some((cache, profile_key)))
}

fn select_impl(
    config: SystemConfig,
    data: &ProfileData,
    exp: &Experiment,
    dl_cache: Option<(&crate::stage::StageCache, &str)>,
) -> Result<SelectionOutcome, SdamError> {
    let window_hi = exp.chunk_bits;
    let windowed = |bfrv: &BitFlipRateVector| {
        select::permutation_for_bfrv_windowed(bfrv, exp.geometry, window_hi)
    };
    let start = Instant::now();
    let selection = match config {
        SystemConfig::BsDm => Selection::GlobalIdentity,
        SystemConfig::BsHm => Selection::GlobalHash(HashMapping::for_geometry(exp.geometry)),
        SystemConfig::BsBsm => {
            Selection::GlobalShuffle(select::shuffle_for_bfrv(&data.aggregate, exp.geometry))
        }
        SystemConfig::SdmBsm => {
            // One mapping per application. Unlike BS+BSM (which can only
            // see the raw physical-address stream, inter-variable jumps
            // included), SDAM's profiler has call-stack attribution, so
            // the per-app profile is the mean of the *attributed*
            // per-variable BFRVs.
            if data.major.is_empty() {
                return Err(SdamError::EmptyProfile);
            }
            let mean = BitFlipRateVector::mean(
                data.major
                    .iter()
                    .map(|v| &data.bfrvs[v])
                    .collect::<Vec<_>>(),
            );
            let perm = windowed(&mean);
            let assignment = data.major.iter().map(|&v| (v, 0)).collect();
            Selection::Sdam {
                perms: vec![perm],
                assignment,
            }
        }
        SystemConfig::SdmBsmMl { clusters } => {
            if data.major.is_empty() {
                return Err(SdamError::EmptyProfile);
            }
            let points: Vec<Vec<f64>> = data
                .major
                .iter()
                .map(|v| data.bfrvs[v].rates().to_vec())
                .collect();
            let clustering = sdam_ml::kmeans(
                &points,
                &sdam_ml::KMeansConfig {
                    k: clusters,
                    seed: exp.training.seed,
                    ..Default::default()
                },
            );
            cluster_selection(data, &clustering.assignments, exp)
        }
        SystemConfig::SdmBsmDl { clusters } => {
            if data.major.is_empty() {
                return Err(SdamError::EmptyProfile);
            }
            let train = || {
                let traces: Vec<Vec<u64>> = data
                    .major
                    .iter()
                    .map(|v| data.pa_streams[v].clone())
                    .collect();
                sdam_ml::dlkmeans::cluster_variables_dl_threaded(
                    &traces,
                    exp.geometry.addr_bits(),
                    clusters,
                    &exp.training,
                    exp.parallelism.threads(),
                )
            };
            let assignments = match dl_cache {
                Some((cache, pkey)) => {
                    let key = crate::stage::embedding_key(pkey, clusters, exp);
                    cache
                        .embedding_or_try(&key, || Ok(train()))?
                        .assignments
                        .clone()
                }
                None => train().assignments,
            };
            cluster_selection(data, &assignments, exp)
        }
    };
    Ok(SelectionOutcome {
        selection,
        learning_time: start.elapsed(),
    })
}

/// Builds the SDAM plan from per-major-variable cluster assignments:
/// each cluster's mapping comes from the mean BFRV of its members
/// (paper §6.2 step 3: flip rates pick the mapping after clustering).
fn cluster_selection(data: &ProfileData, assignments: &[usize], exp: &Experiment) -> Selection {
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut perms = Vec::with_capacity(k);
    let mut assignment = BTreeMap::new();
    for c in 0..k {
        let members: Vec<&BitFlipRateVector> = data
            .major
            .iter()
            .zip(assignments)
            .filter(|&(_, &a)| a == c)
            .map(|(v, _)| &data.bfrvs[v])
            .collect();
        if members.is_empty() {
            // Keep indices aligned: an unused cluster gets the identity.
            perms.push(BitPermutation::identity(6, (exp.chunk_bits - 6) as usize));
            continue;
        }
        let mean = BitFlipRateVector::mean(members);
        perms.push(select::permutation_for_bfrv_windowed(
            &mean,
            exp.geometry,
            exp.chunk_bits,
        ));
    }
    for (v, &c) in data.major.iter().zip(assignments) {
        assignment.insert(*v, c);
    }
    Selection::Sdam { perms, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdam_workloads::datacopy::DataCopy;

    fn exp() -> Experiment {
        Experiment::quick()
    }

    #[test]
    fn spans_cover_variables() {
        let t = DataCopy::new(vec![1]).generate(exp().scale);
        let spans = variable_spans(&t);
        assert_eq!(spans.len(), 8);
        for (_, (lo, len)) in spans {
            assert!(len >= 64);
            assert_eq!(lo % 64, 0);
        }
    }

    #[test]
    fn profile_identifies_copy_variables() {
        let data = profile_on_baseline(&DataCopy::new(vec![16]), &exp());
        assert!(!data.major.is_empty());
        assert_eq!(data.bfrvs.len(), data.major.len());
        assert!(data.aggregate.samples() > 0);
    }

    #[test]
    fn selection_shapes_per_config() {
        let data = profile_on_baseline(&DataCopy::new(vec![4, 16]), &exp());
        let e = exp();
        assert!(matches!(
            select_mappings(SystemConfig::BsDm, &data, &e).selection,
            Selection::GlobalIdentity
        ));
        assert!(matches!(
            select_mappings(SystemConfig::BsHm, &data, &e).selection,
            Selection::GlobalHash(_)
        ));
        assert!(matches!(
            select_mappings(SystemConfig::BsBsm, &data, &e).selection,
            Selection::GlobalShuffle(_)
        ));
        match select_mappings(SystemConfig::SdmBsm, &data, &e).selection {
            Selection::Sdam { perms, assignment } => {
                assert_eq!(perms.len(), 1);
                assert_eq!(assignment.len(), data.major.len());
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn ml_selection_groups_same_stride_variables() {
        // Two strides, two clusters: src/dst of the same stride should
        // land in the same cluster.
        let data = profile_on_baseline(&DataCopy::new(vec![1, 16]), &exp());
        let e = exp();
        let out = select_mappings(SystemConfig::SdmBsmMl { clusters: 2 }, &data, &e);
        match out.selection {
            Selection::Sdam { perms, assignment } => {
                assert_eq!(perms.len(), 2);
                // Threads 0 and 2 share stride 1; threads 1 and 3 share 16.
                let cluster = |v: u32| assignment[&VariableId(v)];
                assert_eq!(cluster(0), cluster(4), "same-stride variables split");
                assert_eq!(cluster(2), cluster(6));
                assert_ne!(cluster(0), cluster(2), "strides merged");
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn learning_time_recorded() {
        let data = profile_on_baseline(&DataCopy::new(vec![8]), &exp());
        let out = select_mappings(SystemConfig::SdmBsmMl { clusters: 2 }, &data, &exp());
        // Duration is non-negative by type; just check it was measured.
        assert!(out.learning_time.as_nanos() < u128::MAX);
    }
}
