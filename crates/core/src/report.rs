//! Run results and comparisons across system configurations.

use std::time::Duration;

use sdam_obs::Registry;
use sdam_sys::ExecutionReport;

use crate::config::SystemConfig;

/// Wall-clock spent in each pipeline phase of one run.
///
/// These are *host* times (how long the evaluation itself took), not
/// simulated cycles; the bench harness records them so BENCH reports
/// capture the effect of [`crate::config::Parallelism`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Profiling run(s) on the training input.
    pub profile: Duration,
    /// Mapping selection (clustering / training / hash optimization).
    pub select: Duration,
    /// Evaluation-trace generation and allocation into the system.
    pub materialize: Duration,
    /// The machine-model execution.
    pub execute: Duration,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.profile + self.select + self.materialize + self.execute
    }
}

/// One workload × configuration run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The configuration.
    pub config: SystemConfig,
    /// The machine-model execution report.
    pub report: ExecutionReport,
    /// Time spent in clustering / DL training during selection (the
    /// paper's Fig. 13 profiling-time metric), if any.
    pub learning_time: Option<Duration>,
    /// Host wall-clock per pipeline phase.
    pub phases: PhaseTimes,
    /// Observability snapshot for this run (see [`crate::metrics`]):
    /// `hbm.*`, `cmt.*`, `mem.*`, `machine.*` counters plus the run's
    /// event trace. Empty when the `obs` feature is disabled.
    pub metrics: Registry,
}

/// A workload compared across configurations, with `BS+DM` as the
/// baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// Per-configuration results, in the order requested.
    pub results: Vec<RunResult>,
    /// The per-run snapshots merged in lineup order, plus the
    /// `stage.*` cache counters of the sweep. Counters are sums across
    /// the runs; empty when the `obs` feature is disabled.
    pub metrics: Registry,
}

impl Comparison {
    /// The baseline (BS+DM) cycle count.
    ///
    /// # Panics
    ///
    /// Panics if the comparison does not include `BS+DM` (the pipeline
    /// always adds it).
    pub fn baseline_cycles(&self) -> u64 {
        let Some(cycles) = self.try_baseline_cycles() else {
            panic!("comparison always contains the BS+DM baseline");
        };
        cycles
    }

    /// The baseline (BS+DM) cycle count, `None` for a hand-built
    /// comparison that lacks the baseline.
    pub fn try_baseline_cycles(&self) -> Option<u64> {
        self.results
            .iter()
            .find(|r| r.config == SystemConfig::BsDm)
            .map(|r| r.report.cycles)
    }

    /// Speedup of a configuration over the BS+DM baseline
    /// (zero-cycle degenerate runs guarded as in
    /// [`sdam_sys::safe_speedup`]).
    pub fn speedup_of(&self, config: SystemConfig) -> Option<f64> {
        let r = self.results.iter().find(|r| r.config == config)?;
        Some(sdam_sys::safe_speedup(
            self.try_baseline_cycles()?,
            r.report.cycles,
        ))
    }

    /// `(config, speedup)` rows, in run order.
    pub fn speedups(&self) -> Vec<(SystemConfig, f64)> {
        let base = self.baseline_cycles();
        self.results
            .iter()
            .map(|r| (r.config, sdam_sys::safe_speedup(base, r.report.cycles)))
            .collect()
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.workload)?;
        for (config, speedup) in self.speedups() {
            writeln!(f, "  {config:<16} {speedup:>6.2}x")?;
        }
        Ok(())
    }
}

/// Writes comparisons as CSV (one row per workload, one speedup column
/// per configuration) — the machine-readable companion to the printed
/// tables, for plotting.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: std::io::Write>(
    comparisons: &[Comparison],
    configs: &[SystemConfig],
    mut w: W,
) -> std::io::Result<()> {
    write!(w, "workload")?;
    for c in configs {
        write!(w, ",{c}")?;
    }
    writeln!(w)?;
    for cmp in comparisons {
        write!(w, "{}", cmp.workload)?;
        for &c in configs {
            match cmp.speedup_of(c) {
                Some(s) => write!(w, ",{s:.4}")?,
                None => write!(w, ",")?,
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Geometric mean of speedups across comparisons for one configuration
/// (how the paper aggregates "1.41x on standard benchmarks").
pub fn geomean_speedup(comparisons: &[Comparison], config: SystemConfig) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for c in comparisons {
        let s = c.speedup_of(config)?;
        log_sum += s.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdam_hbm::{SimStats, Timing};

    fn result(config: SystemConfig, cycles: u64) -> RunResult {
        RunResult {
            config,
            report: ExecutionReport {
                cycles,
                accesses: 100,
                memory_requests: 50,
                l1_hits: 50,
                memory: SimStats {
                    requests: 50,
                    makespan: cycles,
                    per_channel: vec![],
                    timing: Timing::hbm2(),
                },
                mapping_name: config.to_string(),
                per_core: vec![],
                translation: sdam_sys::TranslationStats::default(),
                adapt: Default::default(),
            },
            learning_time: None,
            phases: PhaseTimes::default(),
            metrics: Registry::default(),
        }
    }

    fn cmp(pairs: &[(SystemConfig, u64)]) -> Comparison {
        Comparison {
            workload: "test".into(),
            results: pairs.iter().map(|&(c, n)| result(c, n)).collect(),
            metrics: Registry::default(),
        }
    }

    #[test]
    fn speedups_relative_to_bsdm() {
        let c = cmp(&[
            (SystemConfig::BsDm, 1000),
            (SystemConfig::SdmBsm, 500),
            (SystemConfig::BsHm, 2000),
        ]);
        assert_eq!(c.speedup_of(SystemConfig::SdmBsm), Some(2.0));
        assert_eq!(c.speedup_of(SystemConfig::BsHm), Some(0.5));
        assert_eq!(c.speedup_of(SystemConfig::BsBsm), None);
        assert_eq!(c.speedups()[0].1, 1.0);
    }

    #[test]
    fn degenerate_cycle_counts_never_divide_by_zero() {
        let c = cmp(&[(SystemConfig::BsDm, 0), (SystemConfig::SdmBsm, 0)]);
        assert_eq!(c.speedup_of(SystemConfig::SdmBsm), Some(1.0));
        let c = cmp(&[(SystemConfig::BsDm, 100), (SystemConfig::SdmBsm, 0)]);
        let s = c.speedup_of(SystemConfig::SdmBsm).unwrap();
        assert_eq!(s, 0.0);
        assert!(s.is_finite());
        // No baseline: an Option, not a panic, from the Option-returning
        // accessors.
        let c = cmp(&[(SystemConfig::SdmBsm, 100)]);
        assert_eq!(c.try_baseline_cycles(), None);
        assert_eq!(c.speedup_of(SystemConfig::SdmBsm), None);
    }

    #[test]
    fn geomean_math() {
        let a = cmp(&[(SystemConfig::BsDm, 1000), (SystemConfig::SdmBsm, 500)]); // 2x
        let b = cmp(&[(SystemConfig::BsDm, 1000), (SystemConfig::SdmBsm, 125)]); // 8x
        let g = geomean_speedup(&[a, b], SystemConfig::SdmBsm).unwrap();
        assert!((g - 4.0).abs() < 1e-9, "geomean(2, 8) = 4, got {g}");
        assert_eq!(geomean_speedup(&[], SystemConfig::BsDm), None);
    }

    #[test]
    fn csv_output() {
        let c = cmp(&[(SystemConfig::BsDm, 100), (SystemConfig::SdmBsm, 50)]);
        let mut buf = Vec::new();
        write_csv(
            &[c],
            &[SystemConfig::BsDm, SystemConfig::SdmBsm, SystemConfig::BsHm],
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "workload,BS+DM,SDM+BSM,BS+HM
test,1.0000,2.0000,
"
        );
    }

    #[test]
    fn display_includes_rows() {
        let c = cmp(&[(SystemConfig::BsDm, 100), (SystemConfig::SdmBsm, 50)]);
        let s = c.to_string();
        assert!(s.contains("BS+DM"));
        assert!(s.contains("2.00x"));
    }
}
