//! The end-to-end evaluation pipeline:
//! profile → select → allocate → execute → report.

use std::collections::BTreeMap;
use std::time::Instant;

use sdam_mapping::MappingId;
use sdam_sys::{Machine, MappingEngine};
use sdam_trace::VariableId;
use sdam_workloads::Workload;

use crate::config::{Experiment, SystemConfig};
use crate::par::par_map_indexed;
use crate::profiling::{self, ProfileData, Selection};
use crate::report::{Comparison, PhaseTimes, RunResult};
use crate::system::SdamSystem;

/// Runs one workload under one configuration.
///
/// Profiling (when the configuration needs it) uses the *training*
/// input (`exp.profile_seed`); execution uses the evaluation input
/// (`exp.scale.seed`) — the paper's cross-validation protocol.
///
/// # Panics
///
/// Panics if the experiment is invalid or physical memory is exhausted
/// at the configured scale.
pub fn run(workload: &dyn Workload, config: SystemConfig, exp: &Experiment) -> RunResult {
    let data = config
        .needs_profiling()
        .then(|| profiling::profile_on_baseline(workload, exp));
    run_with_profile(workload, config, exp, data.as_ref())
}

/// Like [`run`], but with an externally supplied profile (lets callers
/// profile once and evaluate many configurations, and lets the BS+BSM
/// baseline use a workload-mix profile as the paper does).
pub fn run_with_profile(
    workload: &dyn Workload,
    config: SystemConfig,
    exp: &Experiment,
    data: Option<&ProfileData>,
) -> RunResult {
    exp.validate();
    let mut phases = PhaseTimes::default();
    let owned;
    let data = if config.needs_profiling() && data.is_none() {
        let t0 = Instant::now();
        owned = profiling::profile_on_baseline(workload, exp);
        phases.profile = t0.elapsed();
        Some(&owned)
    } else {
        data
    };

    let t0 = Instant::now();
    let (selection, learning_time) = match data {
        Some(d) if config.needs_profiling() => {
            let out = profiling::select_mappings(config, d, exp);
            (out.selection, Some(out.learning_time))
        }
        _ => {
            let out = profiling::select_mappings(config, &empty_profile(exp), exp);
            (out.selection, None)
        }
    };
    phases.select = t0.elapsed();

    // ---- Allocation phase on the evaluation input.
    let t0 = Instant::now();
    let eval = workload.generate(exp.scale);
    let mut sys = SdamSystem::new(exp.geometry, exp.chunk_bits);
    let var_mapping: BTreeMap<VariableId, MappingId> = match &selection {
        Selection::Sdam { perms, assignment } => {
            let ids: Vec<MappingId> = perms
                .iter()
                .map(|p| sys.add_mapping(p).expect("fewer than 256 mappings"))
                .collect();
            assignment.iter().map(|(&v, &c)| (v, ids[c])).collect()
        }
        _ => BTreeMap::new(),
    };
    let pa_trace = profiling::materialize(&eval, &mut sys, &var_mapping);
    phases.materialize = t0.elapsed();

    // ---- Execution phase.
    let engine = match selection {
        Selection::GlobalIdentity => MappingEngine::identity(),
        Selection::GlobalShuffle(m) => MappingEngine::Global(Box::new(m)),
        Selection::GlobalHash(m) => MappingEngine::Global(Box::new(m)),
        Selection::Sdam { .. } => MappingEngine::Chunked(sys.cmt_snapshot()),
    };
    let mut machine = Machine::new(exp.machine, exp.geometry).with_timing(exp.timing);
    let t0 = Instant::now();
    let report = machine.run_with(&pa_trace, &engine, exp.parallelism.threads());
    phases.execute = t0.elapsed();
    RunResult {
        config,
        report,
        learning_time,
        phases,
    }
}

/// Compares a workload across configurations; the BS+DM baseline is
/// prepended when absent. Profiling runs once and is shared.
///
/// The per-configuration runs are independent given the shared profile,
/// so they fan out across `exp.parallelism` worker threads; results come
/// back in lineup order and are bit-identical to a serial sweep.
pub fn compare(workload: &dyn Workload, configs: &[SystemConfig], exp: &Experiment) -> Comparison {
    let mut lineup = Vec::new();
    if !configs.contains(&SystemConfig::BsDm) {
        lineup.push(SystemConfig::BsDm);
    }
    lineup.extend_from_slice(configs);
    let needs_profile = lineup.iter().any(|c| c.needs_profiling());
    let data = needs_profile.then(|| profiling::profile_on_baseline(workload, exp));
    let results = par_map_indexed(exp.parallelism.threads(), lineup, |_, c| {
        run_with_profile(workload, c, exp, data.as_ref())
    });
    Comparison {
        workload: workload.name().to_string(),
        results,
    }
}

/// Runs several workloads *co-resident*: all are materialized into one
/// shared [`SdamSystem`] (one physical memory, one CMT — the paper's
/// multi-process reality) and their traces interleave across the
/// machine's cores, one workload per core group. Returns the combined
/// execution report per configuration.
///
/// Under SDAM each workload's variables get their own mappings; under
/// the global baselines one mapping must serve the whole mix — the
/// system-level version of the paper's Observation 2.
///
/// # Panics
///
/// Panics if `workloads` is empty or the experiment is invalid.
pub fn run_corun(workloads: &[&dyn Workload], config: SystemConfig, exp: &Experiment) -> RunResult {
    assert!(!workloads.is_empty(), "need at least one workload");
    exp.validate();

    let mut phases = PhaseTimes::default();

    // Profile each workload independently (per-process profiling, as the
    // paper's offline flow does), then merge the profiles: variables are
    // renumbered per workload so ids never collide. The per-workload
    // profiling runs are independent, so they fan out across the
    // experiment's thread budget (merge order stays the input order).
    let t0 = Instant::now();
    let profiles: Vec<ProfileData> =
        par_map_indexed(exp.parallelism.threads(), workloads.to_vec(), |_, w| {
            profiling::profile_on_baseline(w, exp)
        });
    phases.profile = t0.elapsed();

    // Renumber variables: workload i's variable v becomes
    // v + i * 100_000 (traces never have that many variables).
    const STRIDE: u32 = 100_000;
    let mut merged = empty_profile(exp);
    let mut agg_members: Vec<&sdam_mapping::BitFlipRateVector> = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        for &v in &p.major {
            let nv = VariableId(v.0 + i as u32 * STRIDE);
            merged.major.push(nv);
            merged.bfrvs.insert(nv, p.bfrvs[&v].clone());
            merged.pa_streams.insert(nv, p.pa_streams[&v].clone());
        }
        agg_members.push(&p.aggregate);
    }
    merged.aggregate = sdam_mapping::BitFlipRateVector::mean(agg_members);

    let t0 = Instant::now();
    let out = profiling::select_mappings(config, &merged, exp);
    phases.select = t0.elapsed();

    // Materialize all workloads into ONE system; each runs in its own
    // process, its trace renumbered and pinned to its core set. Trace
    // generation is per-workload independent and fans out; allocation
    // into the shared system below stays serial (one physical memory).
    let t0 = Instant::now();
    let eval: Vec<sdam_trace::Trace> =
        par_map_indexed(exp.parallelism.threads(), workloads.to_vec(), |i, w| {
            w.generate(exp.scale)
                .iter()
                .map(|a| sdam_trace::MemAccess {
                    variable: VariableId(a.variable.0 + i as u32 * STRIDE),
                    thread: sdam_trace::ThreadId(
                        (a.thread.0 as usize % exp.machine.num_cores + i * exp.machine.num_cores)
                            as u16,
                    ),
                    ..*a
                })
                .collect()
        });

    let mut sys = SdamSystem::new(exp.geometry, exp.chunk_bits);
    let var_mapping: BTreeMap<VariableId, MappingId> = match &out.selection {
        Selection::Sdam { perms, assignment } => {
            let ids: Vec<MappingId> = perms
                .iter()
                .map(|p| sys.add_mapping(p).expect("fewer than 256 mappings"))
                .collect();
            assignment.iter().map(|(&v, &c)| (v, ids[c])).collect()
        }
        _ => BTreeMap::new(),
    };
    let mut pa_traces = Vec::new();
    for (i, t) in eval.iter().enumerate() {
        let pid = if i == 0 {
            crate::ProcessId(0)
        } else {
            sys.spawn_process()
        };
        pa_traces.push(profiling::materialize_in(t, &mut sys, pid, &var_mapping));
    }
    let combined = sdam_trace::gen::interleave_round_robin(pa_traces);
    phases.materialize = t0.elapsed();

    let engine = match out.selection {
        Selection::GlobalIdentity => MappingEngine::identity(),
        Selection::GlobalShuffle(m) => MappingEngine::Global(Box::new(m)),
        Selection::GlobalHash(m) => MappingEngine::Global(Box::new(m)),
        Selection::Sdam { .. } => MappingEngine::Chunked(sys.cmt_snapshot()),
    };
    // The machine grows to host all workloads' cores.
    let mut machine_cfg = exp.machine;
    machine_cfg.num_cores *= workloads.len();
    let mut machine = Machine::new(machine_cfg, exp.geometry).with_timing(exp.timing);
    let t0 = Instant::now();
    let report = machine.run_with(&combined, &engine, exp.parallelism.threads());
    phases.execute = t0.elapsed();
    RunResult {
        config,
        report,
        learning_time: Some(out.learning_time),
        phases,
    }
}

fn empty_profile(exp: &Experiment) -> ProfileData {
    ProfileData {
        aggregate: sdam_mapping::BitFlipRateVector::from_addrs(
            std::iter::empty(),
            exp.geometry.addr_bits(),
        ),
        major: Vec::new(),
        bfrvs: BTreeMap::new(),
        pa_streams: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdam_workloads::datacopy::DataCopy;

    #[test]
    fn sdam_beats_default_on_hostile_stride() {
        let w = DataCopy::new(vec![32]);
        let cmp = compare(&w, &[SystemConfig::SdmBsm], &Experiment::quick());
        let s = cmp.speedup_of(SystemConfig::SdmBsm).unwrap();
        assert!(s > 1.25, "SDM+BSM should fix the pinned stride, got {s}");
    }

    #[test]
    fn default_mapping_fine_for_streaming() {
        // Stride-1 already interleaves perfectly, and the per-process
        // aggregate profile is polluted by inter-variable jumps — the
        // paper observes the same regression ("for some benchmarks e.g.
        // perl and stream, SDM+BSM shows worse performance"). SDAM must
        // not win here, and per-variable clustering must recover most of
        // the loss.
        let w = DataCopy::new(vec![1]);
        let cmp = compare(
            &w,
            &[SystemConfig::SdmBsm, SystemConfig::SdmBsmMl { clusters: 4 }],
            &Experiment::quick(),
        );
        let s = cmp.speedup_of(SystemConfig::SdmBsm).unwrap();
        assert!((0.5..1.3).contains(&s), "streaming speedup {s}");
        let ml = cmp
            .speedup_of(SystemConfig::SdmBsmMl { clusters: 4 })
            .unwrap();
        assert!(
            (0.6..1.3).contains(&ml),
            "per-variable streaming speedup out of band: {ml}"
        );
    }

    #[test]
    fn per_variable_beats_global_on_mixed_strides() {
        // The paper's Fig. 4 / Fig. 11 claim: with mixed strides, one
        // global shuffle cannot serve both patterns but per-variable
        // SDAM can.
        let w = DataCopy::new(vec![1, 32]);
        let cmp = compare(
            &w,
            &[SystemConfig::BsBsm, SystemConfig::SdmBsmMl { clusters: 4 }],
            &Experiment::quick(),
        );
        let global = cmp.speedup_of(SystemConfig::BsBsm).unwrap();
        let per_var = cmp
            .speedup_of(SystemConfig::SdmBsmMl { clusters: 4 })
            .unwrap();
        assert!(
            per_var > global,
            "per-variable ({per_var}) should beat global ({global})"
        );
        assert!(
            per_var > 1.05,
            "mixed strides should improve, got {per_var}"
        );
    }

    #[test]
    fn baseline_always_present() {
        let w = DataCopy::new(vec![8]);
        let cmp = compare(&w, &[SystemConfig::BsHm], &Experiment::quick());
        assert_eq!(cmp.results[0].config, SystemConfig::BsDm);
        assert_eq!(cmp.results.len(), 2);
        assert!((cmp.speedup_of(SystemConfig::BsDm).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corun_per_variable_beats_global_mix() {
        // Two co-running copies with different strides: one global
        // mapping must compromise, SDAM serves both — the paper's
        // Observation 2 at system level.
        // Single-threaded tenants so the cross-workload effect is not
        // masked by DataCopy's intentionally channel-aligned threads.
        let streamer = DataCopy::with_threads(vec![1], 1);
        let strider = DataCopy::with_threads(vec![32], 1);
        let exp = Experiment::quick();
        let run = |config| {
            run_corun(
                &[&streamer as &dyn sdam_workloads::Workload, &strider],
                config,
                &exp,
            )
            .report
            .cycles
        };
        let base = run(SystemConfig::BsDm);
        let global = run(SystemConfig::BsBsm);
        let per_var = run(SystemConfig::SdmBsmMl { clusters: 4 });
        let s_global = base as f64 / global as f64;
        let s_per_var = base as f64 / per_var as f64;
        assert!(
            s_per_var > s_global,
            "per-variable ({s_per_var:.2}) must beat the global mix ({s_global:.2})"
        );
        assert!(s_per_var > 1.05, "co-run should improve: {s_per_var:.2}");
    }

    #[test]
    fn learning_time_only_for_learned_configs() {
        let w = DataCopy::new(vec![16]);
        let r = run(&w, SystemConfig::BsDm, &Experiment::quick());
        assert!(r.learning_time.is_none());
        let r = run(
            &w,
            SystemConfig::SdmBsmMl { clusters: 2 },
            &Experiment::quick(),
        );
        assert!(r.learning_time.is_some());
    }
}
