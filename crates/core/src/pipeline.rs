//! The end-to-end evaluation pipeline:
//! profile → select → allocate → execute → report.
//!
//! Each entry point comes in two flavours: a fallible `try_*` function
//! returning [`SdamError`] (for embedders), and a signature-compatible
//! panicking wrapper (for the figure binaries, which want fail-fast
//! behaviour). All of them drive the composable stages of
//! [`crate::stage`]; the `*_with_cache` variants accept an external
//! [`StageCache`] so a harness can reuse profiles and selections across
//! calls.

use std::collections::BTreeMap;
use std::time::Instant;

use sdam_mapping::MappingId;
use sdam_sys::{Machine, MappingEngine};
use sdam_trace::VariableId;
use sdam_workloads::Workload;

use crate::config::{Experiment, SystemConfig};
use crate::error::SdamError;
use crate::par::par_map_indexed;
use crate::profiling::{self, ProfileData, Selection};
use crate::report::{Comparison, PhaseTimes, RunResult};
use crate::stage::{
    profile_key, run_stages, selection_key, standard_stages, ProfileHandle, RunContext, StageCache,
};
use crate::system::SdamSystem;

/// Runs one workload under one configuration.
///
/// Profiling (when the configuration needs it) uses the *training*
/// input (`exp.profile_seed`); execution uses the evaluation input
/// (`exp.scale.seed`) — the paper's cross-validation protocol.
///
/// # Panics
///
/// Panics if the experiment is invalid or physical memory is exhausted
/// at the configured scale.
pub fn run(workload: &dyn Workload, config: SystemConfig, exp: &Experiment) -> RunResult {
    match try_run(workload, config, exp) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible twin of [`run`].
///
/// # Errors
///
/// Any [`SdamError`] the stages surface — an invalid experiment,
/// exhausted physical memory, an empty profile.
pub fn try_run(
    workload: &dyn Workload,
    config: SystemConfig,
    exp: &Experiment,
) -> Result<RunResult, SdamError> {
    let cache = StageCache::new();
    try_run_with_cache(workload, config, exp, None, &cache)
}

/// Like [`run`], but with an externally supplied profile (lets callers
/// profile once and evaluate many configurations, and lets the BS+BSM
/// baseline use a workload-mix profile as the paper does).
///
/// # Panics
///
/// As [`run`].
pub fn run_with_profile(
    workload: &dyn Workload,
    config: SystemConfig,
    exp: &Experiment,
    data: Option<&ProfileData>,
) -> RunResult {
    match try_run_with_profile(workload, config, exp, data) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible twin of [`run_with_profile`].
///
/// # Errors
///
/// As [`try_run`].
pub fn try_run_with_profile(
    workload: &dyn Workload,
    config: SystemConfig,
    exp: &Experiment,
    data: Option<&ProfileData>,
) -> Result<RunResult, SdamError> {
    let cache = StageCache::new();
    try_run_with_cache(workload, config, exp, data, &cache)
}

/// The full staged run with an explicit artifact cache: seeds a
/// [`RunContext`] (borrowing `data` when supplied), drives the standard
/// stages, and returns the assembled result.
///
/// # Errors
///
/// As [`try_run`].
pub fn try_run_with_cache(
    workload: &dyn Workload,
    config: SystemConfig,
    exp: &Experiment,
    data: Option<&ProfileData>,
    cache: &StageCache,
) -> Result<RunResult, SdamError> {
    exp.try_validate()?;
    let mut ctx = RunContext::new(workload, config, exp, cache);
    if let Some(d) = data {
        ctx.profile = Some(ProfileHandle::Borrowed(d));
    }
    run_stages(&mut ctx, &standard_stages())?;
    let Some(result) = ctx.result.take() else {
        panic!("ReportStage did not produce a result");
    };
    Ok(result)
}

/// Compares a workload across configurations; the BS+DM baseline is
/// prepended when absent. Profiling runs once and is shared through the
/// stage cache.
///
/// The per-configuration runs are independent given the shared profile,
/// so they fan out across `exp.parallelism` worker threads; results come
/// back in lineup order and are bit-identical to a serial sweep.
///
/// # Panics
///
/// As [`run`].
pub fn compare(workload: &dyn Workload, configs: &[SystemConfig], exp: &Experiment) -> Comparison {
    match try_compare(workload, configs, exp) {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible twin of [`compare`].
///
/// # Errors
///
/// As [`try_run`].
pub fn try_compare(
    workload: &dyn Workload,
    configs: &[SystemConfig],
    exp: &Experiment,
) -> Result<Comparison, SdamError> {
    let cache = StageCache::new();
    try_compare_with_cache(workload, configs, exp, &cache)
}

/// [`try_compare`] with an external artifact cache, so a harness
/// sweeping many workloads × configurations (the repro binaries) can
/// reuse profiles and selections across calls.
///
/// The workload's profile is warmed into the cache *before* the
/// per-configuration fan-out, so exactly one profiling pass runs per
/// workload no matter how many configurations need it (observable via
/// [`StageCache::profile_misses`]).
///
/// # Errors
///
/// As [`try_run`].
pub fn try_compare_with_cache(
    workload: &dyn Workload,
    configs: &[SystemConfig],
    exp: &Experiment,
    cache: &StageCache,
) -> Result<Comparison, SdamError> {
    exp.try_validate()?;
    let mut lineup = Vec::new();
    if !configs.contains(&SystemConfig::BsDm) {
        lineup.push(SystemConfig::BsDm);
    }
    lineup.extend_from_slice(configs);
    if lineup.iter().any(|c| c.needs_profiling()) {
        cache.profile_or_try(&profile_key(workload, exp), || {
            profiling::try_profile_on_baseline(workload, exp)
        })?;
    }
    let results = par_map_indexed(exp.parallelism.threads(), lineup, |_, c| {
        try_run_with_cache(workload, c, exp, None, cache)
    });
    let results: Result<Vec<RunResult>, SdamError> = results.into_iter().collect();
    let results = results?;
    // Snapshots merge in lineup order — the fan-out already returns
    // results in that order, so the merged registry (event trace
    // included) is bit-identical to a serial sweep.
    let metrics = crate::metrics::merge_sweep_metrics(&results, cache);
    Ok(Comparison {
        workload: workload.name().to_string(),
        results,
        metrics,
    })
}

/// Runs several workloads *co-resident*: all are materialized into one
/// shared [`SdamSystem`] (one physical memory, one CMT — the paper's
/// multi-process reality) and their traces interleave across the
/// machine's cores, one workload per core group. Returns the combined
/// execution report per configuration.
///
/// Under SDAM each workload's variables get their own mappings; under
/// the global baselines one mapping must serve the whole mix — the
/// system-level version of the paper's Observation 2.
///
/// # Panics
///
/// Panics if `workloads` is empty or the experiment is invalid.
pub fn run_corun(workloads: &[&dyn Workload], config: SystemConfig, exp: &Experiment) -> RunResult {
    match try_run_corun(workloads, config, exp) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible twin of [`run_corun`].
///
/// # Errors
///
/// [`SdamError::NoWorkloads`] for an empty workload list, plus anything
/// [`try_run`] can return.
pub fn try_run_corun(
    workloads: &[&dyn Workload],
    config: SystemConfig,
    exp: &Experiment,
) -> Result<RunResult, SdamError> {
    let cache = StageCache::new();
    try_run_corun_with_cache(workloads, config, exp, &cache)
}

/// [`try_run_corun`] with an external artifact cache: per-workload
/// profiles and the merged-mix selection are keyed and reused, so a
/// harness sweeping configurations over the same mix profiles each
/// workload once.
///
/// # Errors
///
/// As [`try_run_corun`].
pub fn try_run_corun_with_cache(
    workloads: &[&dyn Workload],
    config: SystemConfig,
    exp: &Experiment,
    cache: &StageCache,
) -> Result<RunResult, SdamError> {
    if workloads.is_empty() {
        return Err(SdamError::NoWorkloads);
    }
    exp.try_validate()?;

    let mut phases = PhaseTimes::default();

    // Profile each workload independently (per-process profiling, as the
    // paper's offline flow does), then merge the profiles: variables are
    // renumbered per workload so ids never collide. The per-workload
    // profiling runs are independent, so they fan out across the
    // experiment's thread budget (merge order stays the input order).
    let t0 = Instant::now();
    let keys: Vec<String> = workloads.iter().map(|w| profile_key(*w, exp)).collect();
    let profiles = par_map_indexed(exp.parallelism.threads(), workloads.to_vec(), |i, w| {
        cache.profile_or_try(&keys[i], || profiling::try_profile_on_baseline(w, exp))
    });
    let profiles: Vec<std::sync::Arc<ProfileData>> = profiles
        .into_iter()
        .collect::<Result<Vec<_>, SdamError>>()?;
    phases.profile = t0.elapsed();

    // Renumber variables: workload i's variable v becomes
    // v + i * 100_000 (traces never have that many variables).
    const STRIDE: u32 = 100_000;
    let mut merged = profiling::empty_profile(exp);
    let mut agg_members: Vec<&sdam_mapping::BitFlipRateVector> = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        for &v in &p.major {
            let nv = VariableId(v.0 + i as u32 * STRIDE);
            merged.major.push(nv);
            merged.bfrvs.insert(nv, p.bfrvs[&v].clone());
            merged.pa_streams.insert(nv, p.pa_streams[&v].clone());
        }
        agg_members.push(&p.aggregate);
    }
    merged.aggregate = sdam_mapping::BitFlipRateVector::mean(agg_members);

    let t0 = Instant::now();
    let mix_pkey = format!("corun[{}]", keys.join("+"));
    let mix_key = selection_key(&mix_pkey, config, exp);
    let out = cache.selection_or_try(&mix_key, || {
        profiling::try_select_mappings_cached(config, &merged, exp, cache, &mix_pkey)
    })?;
    phases.select = t0.elapsed();

    // Materialize all workloads into ONE system; each runs in its own
    // process, its trace renumbered and pinned to its core set. Trace
    // generation is per-workload independent and fans out; allocation
    // into the shared system below stays serial (one physical memory).
    let t0 = Instant::now();
    let eval: Vec<sdam_trace::Trace> =
        par_map_indexed(exp.parallelism.threads(), workloads.to_vec(), |i, w| {
            w.generate(exp.scale)
                .iter()
                .map(|a| sdam_trace::MemAccess {
                    variable: VariableId(a.variable.0 + i as u32 * STRIDE),
                    thread: sdam_trace::ThreadId(
                        (a.thread.0 as usize % exp.machine.num_cores + i * exp.machine.num_cores)
                            as u16,
                    ),
                    ..*a
                })
                .collect()
        });

    let mut sys = SdamSystem::try_new(exp.geometry, exp.chunk_bits)?;
    let var_mapping: BTreeMap<VariableId, MappingId> = match &out.selection {
        Selection::Sdam { perms, assignment } => {
            let mut ids = Vec::with_capacity(perms.len());
            for p in perms {
                ids.push(sys.try_add_mapping(p)?);
            }
            assignment.iter().map(|(&v, &c)| (v, ids[c])).collect()
        }
        _ => BTreeMap::new(),
    };
    let mut pa_traces = Vec::new();
    for (i, t) in eval.iter().enumerate() {
        let pid = if i == 0 {
            crate::ProcessId(0)
        } else {
            sys.spawn_process()
        };
        pa_traces.push(profiling::try_materialize_in(
            t,
            &mut sys,
            pid,
            &var_mapping,
        )?);
    }
    let combined = sdam_trace::gen::interleave_round_robin(pa_traces);
    phases.materialize = t0.elapsed();

    let engine = match &out.selection {
        Selection::GlobalIdentity => MappingEngine::identity(),
        Selection::GlobalShuffle(m) => MappingEngine::Global(Box::new(m.clone())),
        Selection::GlobalHash(m) => MappingEngine::Global(Box::new(m.clone())),
        Selection::Sdam { .. } => MappingEngine::Chunked(sys.cmt_snapshot()),
    };
    // The machine grows to host all workloads' cores.
    let mut machine_cfg = exp.machine;
    machine_cfg.num_cores *= workloads.len();
    let mut machine = Machine::new(machine_cfg, exp.geometry).with_timing(exp.timing);
    let t0 = Instant::now();
    let report = machine.run_with(&combined, &engine, exp.parallelism.threads());
    phases.execute = t0.elapsed();
    let metrics = crate::metrics::collect_run_metrics(&report, Some(&sys), &phases);
    Ok(RunResult {
        config,
        report,
        learning_time: Some(out.learning_time),
        phases,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdam_workloads::datacopy::DataCopy;

    #[test]
    fn sdam_beats_default_on_hostile_stride() {
        let w = DataCopy::new(vec![32]);
        let cmp = compare(&w, &[SystemConfig::SdmBsm], &Experiment::quick());
        let s = cmp.speedup_of(SystemConfig::SdmBsm).unwrap();
        assert!(s > 1.25, "SDM+BSM should fix the pinned stride, got {s}");
    }

    #[test]
    fn default_mapping_fine_for_streaming() {
        // Stride-1 already interleaves perfectly, and the per-process
        // aggregate profile is polluted by inter-variable jumps — the
        // paper observes the same regression ("for some benchmarks e.g.
        // perl and stream, SDM+BSM shows worse performance"). SDAM must
        // not win here, and per-variable clustering must recover most of
        // the loss.
        let w = DataCopy::new(vec![1]);
        let cmp = compare(
            &w,
            &[SystemConfig::SdmBsm, SystemConfig::SdmBsmMl { clusters: 4 }],
            &Experiment::quick(),
        );
        let s = cmp.speedup_of(SystemConfig::SdmBsm).unwrap();
        assert!((0.5..1.3).contains(&s), "streaming speedup {s}");
        let ml = cmp
            .speedup_of(SystemConfig::SdmBsmMl { clusters: 4 })
            .unwrap();
        assert!(
            (0.6..1.3).contains(&ml),
            "per-variable streaming speedup out of band: {ml}"
        );
    }

    #[test]
    fn per_variable_beats_global_on_mixed_strides() {
        // The paper's Fig. 4 / Fig. 11 claim: with mixed strides, one
        // global shuffle cannot serve both patterns but per-variable
        // SDAM can.
        let w = DataCopy::new(vec![1, 32]);
        let cmp = compare(
            &w,
            &[SystemConfig::BsBsm, SystemConfig::SdmBsmMl { clusters: 4 }],
            &Experiment::quick(),
        );
        let global = cmp.speedup_of(SystemConfig::BsBsm).unwrap();
        let per_var = cmp
            .speedup_of(SystemConfig::SdmBsmMl { clusters: 4 })
            .unwrap();
        assert!(
            per_var > global,
            "per-variable ({per_var}) should beat global ({global})"
        );
        assert!(
            per_var > 1.05,
            "mixed strides should improve, got {per_var}"
        );
    }

    #[test]
    fn baseline_always_present() {
        let w = DataCopy::new(vec![8]);
        let cmp = compare(&w, &[SystemConfig::BsHm], &Experiment::quick());
        assert_eq!(cmp.results[0].config, SystemConfig::BsDm);
        assert_eq!(cmp.results.len(), 2);
        assert!((cmp.speedup_of(SystemConfig::BsDm).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compare_profiles_each_workload_exactly_once() {
        // The acceptance criterion of the staged pipeline: N
        // configurations share ONE profiling pass through the cache.
        let w = DataCopy::new(vec![16]);
        let cache = StageCache::new();
        let cmp = try_compare_with_cache(
            &w,
            &[
                SystemConfig::BsBsm,
                SystemConfig::SdmBsm,
                SystemConfig::SdmBsmMl { clusters: 2 },
            ],
            &Experiment::quick(),
            &cache,
        )
        .unwrap();
        assert_eq!(cmp.results.len(), 4, "BS+DM prepended");
        assert_eq!(cache.profile_misses(), 1, "exactly one profiling pass");
        assert_eq!(
            cache.profile_hits(),
            3,
            "every profiled configuration hit the cache"
        );
        // A second sweep on the same cache reuses everything.
        let cmp2 = try_compare_with_cache(
            &w,
            &[SystemConfig::BsBsm, SystemConfig::SdmBsm],
            &Experiment::quick(),
            &cache,
        )
        .unwrap();
        assert_eq!(cache.profile_misses(), 1, "no new profiling pass");
        // Cache reuse is bit-identical to recomputation.
        assert_eq!(
            cmp.speedup_of(SystemConfig::SdmBsm),
            cmp2.speedup_of(SystemConfig::SdmBsm)
        );
    }

    #[test]
    fn cached_compare_matches_fresh_compare() {
        // Determinism across the cache boundary: a shared-cache sweep
        // reports the same cycles as independent fresh runs.
        let w = DataCopy::new(vec![4, 16]);
        let exp = Experiment::quick();
        let fresh = compare(&w, &[SystemConfig::SdmBsm], &exp);
        let cache = StageCache::new();
        let cached = try_compare_with_cache(&w, &[SystemConfig::SdmBsm], &exp, &cache).unwrap();
        for (a, b) in fresh.results.iter().zip(&cached.results) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.report.cycles, b.report.cycles);
        }
    }

    #[test]
    fn corun_per_variable_beats_global_mix() {
        // Two co-running copies with different strides: one global
        // mapping must compromise, SDAM serves both — the paper's
        // Observation 2 at system level.
        // Single-threaded tenants so the cross-workload effect is not
        // masked by DataCopy's intentionally channel-aligned threads.
        let streamer = DataCopy::with_threads(vec![1], 1);
        let strider = DataCopy::with_threads(vec![32], 1);
        let exp = Experiment::quick();
        let run = |config| {
            run_corun(
                &[&streamer as &dyn sdam_workloads::Workload, &strider],
                config,
                &exp,
            )
            .report
            .cycles
        };
        let base = run(SystemConfig::BsDm);
        let global = run(SystemConfig::BsBsm);
        let per_var = run(SystemConfig::SdmBsmMl { clusters: 4 });
        let s_global = base as f64 / global as f64;
        let s_per_var = base as f64 / per_var as f64;
        assert!(
            s_per_var > s_global,
            "per-variable ({s_per_var:.2}) must beat the global mix ({s_global:.2})"
        );
        assert!(s_per_var > 1.05, "co-run should improve: {s_per_var:.2}");
    }

    #[test]
    fn corun_reuses_profiles_across_configs() {
        let streamer = DataCopy::with_threads(vec![1], 1);
        let strider = DataCopy::with_threads(vec![32], 1);
        let exp = Experiment::quick();
        let cache = StageCache::new();
        let workloads: Vec<&dyn sdam_workloads::Workload> = vec![&streamer, &strider];
        try_run_corun_with_cache(&workloads, SystemConfig::BsBsm, &exp, &cache).unwrap();
        assert_eq!(cache.profile_misses(), 2, "one pass per workload");
        try_run_corun_with_cache(&workloads, SystemConfig::SdmBsm, &exp, &cache).unwrap();
        assert_eq!(cache.profile_misses(), 2, "second config reuses both");
        assert_eq!(cache.profile_hits(), 2);
    }

    #[test]
    fn empty_corun_is_an_error_not_a_panic() {
        let err = try_run_corun(&[], SystemConfig::BsDm, &Experiment::quick());
        assert!(matches!(err, Err(SdamError::NoWorkloads)));
    }

    #[test]
    fn learning_time_only_for_learned_configs() {
        let w = DataCopy::new(vec![16]);
        let r = run(&w, SystemConfig::BsDm, &Experiment::quick());
        assert!(r.learning_time.is_none());
        let r = run(
            &w,
            SystemConfig::SdmBsmMl { clusters: 2 },
            &Experiment::quick(),
        );
        assert!(r.learning_time.is_some());
    }
}
