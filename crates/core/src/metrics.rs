//! Assembly of observability snapshots (the workspace's single metrics
//! path).
//!
//! Every layer of the stack keeps plain per-component counters in its
//! own sharded accumulators ([`sdam_hbm::ChannelStats`],
//! [`sdam_sys::TranslationStats`], the allocator counters in
//! [`sdam_mem`]); nothing in a hot loop touches a registry or an
//! atomic. This module is where those accumulators are *merged* into
//! one [`Registry`] — once per run, at the report barrier — which is
//! what keeps the snapshot bit-identical between the serial driver and
//! the channel-sharded parallel one: the shards are always folded in a
//! fixed order (channel order, core order, process order, lineup
//! order), never racily.
//!
//! The merge is gated on the `obs` cargo feature. With the feature off
//! every function here returns/leaves an empty registry, the per-run
//! cost is a handful of branch-on-constant checks, and downstream
//! consumers (`RunResult::metrics`, JSON sidecars) see an empty — but
//! still schema-valid — snapshot.
//!
//! ## Namespace
//!
//! | prefix     | source                                              |
//! |------------|-----------------------------------------------------|
//! | `hbm.*`    | [`sdam_hbm::SimStats::export_into`] (per-channel and aggregated row-buffer counters) |
//! | `cmt.*`    | [`sdam_sys::TranslationStats::export_into`] (CMT translate memo) |
//! | `mem.*`    | [`SdamSystem::export_into`] (chunk allocator + malloc + faults) |
//! | `machine.*`| the [`ExecutionReport`] headline numbers            |
//! | `stage.*`  | [`StageCache`] hit/miss counters and (volatile) per-phase wall-clock |
//!
//! `stage.<phase>.nanos` entries are host wall-clock and therefore go
//! into the registry's *volatile* section, which
//! [`Registry::stable_json`] excludes — the stable snapshot contains
//! only replayable simulation facts.

use sdam_obs::Registry;
use sdam_sys::ExecutionReport;

use crate::report::{PhaseTimes, RunResult};
use crate::stage::StageCache;
use crate::system::SdamSystem;

/// Whether snapshot collection is compiled in (the `obs` feature).
pub const OBS_ENABLED: bool = cfg!(feature = "obs");

/// Builds the per-run snapshot from the run's sharded accumulators:
/// the machine report (which carries the HBM and translation stats),
/// the system the trace was allocated into (chunk/malloc counters and
/// the allocation event trace), and the host-side phase times.
///
/// Returns an empty registry when the `obs` feature is off.
pub fn collect_run_metrics(
    report: &ExecutionReport,
    sys: Option<&SdamSystem>,
    phases: &PhaseTimes,
) -> Registry {
    let mut reg = Registry::new();
    if !OBS_ENABLED {
        return reg;
    }
    reg.incr("machine.cycles", report.cycles);
    reg.incr("machine.accesses", report.accesses);
    reg.incr("machine.memory_requests", report.memory_requests);
    reg.incr("machine.l1_hits", report.l1_hits);
    report.memory.export_into(&mut reg);
    report.translation.export_into(&mut reg);
    export_adapt(report, &mut reg);
    if let Some(sys) = sys {
        sys.export_into(&mut reg);
    }
    export_phases(phases, &mut reg);
    reg
}

/// Exports the adaptive-remapping section of a report under the
/// `machine.*` namespace: migration totals plus the per-chunk conflict
/// attribution (`machine.chunk.<n>.*`). Emitted only when the adaptive
/// driver actually ran, so non-adaptive snapshots — including the
/// golden fixture — are byte-identical to before the adaptive layer
/// existed.
fn export_adapt(report: &ExecutionReport, reg: &mut Registry) {
    if !report.adapt.enabled {
        return;
    }
    let a = &report.adapt;
    reg.incr("machine.adapt_windows", a.windows);
    reg.incr("machine.migrations", a.migrations);
    reg.incr("machine.migrated_bytes", a.migrated_bytes);
    reg.incr("machine.migration_requests", a.migration_requests);
    reg.incr("machine.migration_clocks", a.migration_clocks);
    reg.incr("machine.migration_row_hits", a.migration_row_hits);
    reg.incr("machine.migration_row_misses", a.migration_row_misses);
    reg.incr("machine.migration_row_conflicts", a.migration_row_conflicts);
    for (chunk, t) in &a.chunk_traffic {
        reg.incr(&format!("machine.chunk.{chunk}.requests"), t.requests);
        reg.incr(
            &format!("machine.chunk.{chunk}.row_conflicts"),
            t.row_conflicts,
        );
    }
}

/// Folds host wall-clock per phase into the registry's volatile
/// section (excluded from [`Registry::stable_json`] — wall-clock can
/// never be deterministic).
pub fn export_phases(phases: &PhaseTimes, reg: &mut Registry) {
    if !OBS_ENABLED {
        return;
    }
    reg.set_volatile("stage.profile.nanos", phases.profile.as_nanos() as u64);
    reg.set_volatile("stage.select.nanos", phases.select.as_nanos() as u64);
    reg.set_volatile(
        "stage.materialize.nanos",
        phases.materialize.as_nanos() as u64,
    );
    reg.set_volatile("stage.execute.nanos", phases.execute.as_nanos() as u64);
}

/// Merges the per-run snapshots of a comparison sweep, in lineup
/// order, and appends the stage-cache counters.
///
/// The cache counters are deterministic even under the threaded
/// fan-out because [`crate::pipeline::try_compare_with_cache`] warms
/// the profile serially before fanning out (so the miss count does not
/// depend on thread interleaving) and selection keys are distinct per
/// configuration. Note they read the *cache's* cumulative totals: a
/// harness sharing one cache across sweeps sees the running sum.
pub fn merge_sweep_metrics(results: &[RunResult], cache: &StageCache) -> Registry {
    let mut reg = Registry::new();
    if !OBS_ENABLED {
        return reg;
    }
    for r in results {
        reg.merge(&r.metrics);
    }
    reg.incr("stage.profile_cache.hits", cache.profile_hits());
    reg.incr("stage.profile_cache.misses", cache.profile_misses());
    reg.incr("stage.selection_cache.hits", cache.selection_hits());
    reg.incr("stage.selection_cache.misses", cache.selection_misses());
    reg.incr("stage.embedding_cache.hits", cache.embedding_hits());
    reg.incr("stage.embedding_cache.misses", cache.embedding_misses());
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdam_hbm::{SimStats, Timing};
    use sdam_sys::TranslationStats;

    fn report() -> ExecutionReport {
        ExecutionReport {
            cycles: 1000,
            accesses: 100,
            memory_requests: 40,
            l1_hits: 60,
            memory: SimStats {
                requests: 40,
                makespan: 900,
                per_channel: vec![],
                timing: Timing::hbm2(),
            },
            mapping_name: "test".into(),
            per_core: vec![],
            translation: TranslationStats {
                memo_hits: 30,
                memo_misses: 10,
            },
            adapt: Default::default(),
        }
    }

    #[test]
    fn adapt_metrics_only_appear_for_adaptive_runs() {
        let plain = collect_run_metrics(&report(), None, &PhaseTimes::default());
        if !OBS_ENABLED {
            assert!(plain.is_empty());
            return;
        }
        assert!(
            !plain.stable_json().contains("machine.migrations"),
            "non-adaptive snapshots must not grow adapt keys"
        );
        let mut r = report();
        r.adapt.enabled = true;
        r.adapt.windows = 3;
        r.adapt.migrations = 1;
        r.adapt.chunk_traffic.insert(
            7,
            sdam_sys::ChunkTraffic {
                requests: 40,
                row_conflicts: 4,
            },
        );
        let reg = collect_run_metrics(&r, None, &PhaseTimes::default());
        assert_eq!(reg.counter("machine.adapt_windows"), 3);
        assert_eq!(reg.counter("machine.migrations"), 1);
        assert_eq!(reg.counter("machine.chunk.7.requests"), 40);
        assert_eq!(reg.counter("machine.chunk.7.row_conflicts"), 4);
    }

    #[test]
    fn run_metrics_cover_machine_hbm_and_cmt() {
        let reg = collect_run_metrics(&report(), None, &PhaseTimes::default());
        if !OBS_ENABLED {
            assert!(reg.is_empty());
            return;
        }
        assert_eq!(reg.counter("machine.cycles"), 1000);
        assert_eq!(reg.counter("machine.l1_hits"), 60);
        assert_eq!(reg.counter("hbm.requests"), 40);
        assert_eq!(reg.counter("cmt.lookups"), 40);
        assert_eq!(reg.counter("cmt.memo_hits"), 30);
    }

    #[test]
    fn phase_times_are_volatile_not_stable() {
        let phases = PhaseTimes {
            execute: std::time::Duration::from_nanos(1234),
            ..PhaseTimes::default()
        };
        let reg = collect_run_metrics(&report(), None, &phases);
        if !OBS_ENABLED {
            return;
        }
        assert_eq!(reg.volatile("stage.execute.nanos"), 1234);
        assert!(
            !reg.stable_json().contains("stage.execute.nanos"),
            "wall-clock must not leak into the stable snapshot"
        );
        assert!(reg.full_json().contains("stage.execute.nanos"));
    }
}
