//! A from-scratch LSTM with manual backpropagation through time.
//!
//! Gate order in the packed weight matrix is `[i, f, o, g]` (input,
//! forget, output, candidate). Two execution tiers share the same
//! parameters:
//!
//! * the original per-step path ([`LstmLayer::forward_step`],
//!   [`LstmLayer::backward_step`], [`Lstm::forward`],
//!   [`Lstm::backward`]) — batch size 1, auditable, kept as the
//!   reference oracle;
//! * the batched path ([`Lstm::forward_batch`],
//!   [`Lstm::backward_batch`]) — layer-major over a whole minibatch.
//!   Sequences are packed column-wise into `dim × (T·B)` matrices
//!   (column `t·B + s` is step `t` of sample `s`), the input
//!   projection `W_x·X` is hoisted out of the time loop as one matmul,
//!   and the weight gradients collapse into two matmuls per layer
//!   (`dPre·Xᵀ`, `dPre·H_prevᵀ`). Gradients land in caller-owned
//!   [`LayerGrads`] buffers so a minibatch can be fanned out over
//!   threads and reduced in a fixed order.

use rand::Rng;

use crate::linalg::{add_assign, sigmoid, Mat};
use crate::optim::Adam;

/// One LSTM layer with its parameters, gradients, and optimizer state.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    input_dim: usize,
    hidden_dim: usize,
    /// Packed gate weights: `4·hidden × (input + hidden)`.
    w: Mat,
    /// Packed gate biases: `4·hidden`.
    b: Vec<f64>,
    dw: Mat,
    db: Vec<f64>,
    adam_w: Adam,
    adam_b: Adam,
}

/// Cached activations of one forward step, needed by the backward pass.
#[derive(Debug, Clone)]
pub struct StepCache {
    z: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c_prev: Vec<f64>,
    c: Vec<f64>,
}

/// Caller-owned gradient buffer of one layer: the packed weight
/// gradient (`4h × (in+h)`) and the bias gradient. Batched backward
/// passes accumulate here instead of into the layer, so per-work-item
/// gradients can be reduced in a fixed order regardless of scheduling.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Packed gate-weight gradient, same layout as the layer's weights.
    pub dw: Mat,
    /// Packed gate-bias gradient.
    pub db: Vec<f64>,
}

/// How a batched layer received its input: one column per step and
/// sample, or one column per sample broadcast across steps.
#[derive(Debug, Clone)]
enum SeqInput {
    Flat(Mat),
    Const(Mat),
}

/// Cached activations of one layer's batched sequence pass.
///
/// All matrices are `hidden × (steps·batch)` with column `t·batch + s`
/// holding step `t` of sample `s`.
#[derive(Debug, Clone)]
pub struct LayerSeqCache {
    x: SeqInput,
    hprev_flat: Mat,
    i_flat: Mat,
    f_flat: Mat,
    o_flat: Mat,
    g_flat: Mat,
    c_flat: Mat,
    cprev_flat: Mat,
    steps: usize,
    batch: usize,
}

impl LstmLayer {
    /// Creates a layer with Xavier-initialized weights and a forget-gate
    /// bias of 1 (the standard trick for gradient flow).
    pub fn new<R: Rng>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let rows = 4 * hidden_dim;
        let cols = input_dim + hidden_dim;
        let mut b = vec![0.0; rows];
        for v in b.iter_mut().skip(hidden_dim).take(hidden_dim) {
            *v = 1.0; // forget gate
        }
        LstmLayer {
            input_dim,
            hidden_dim,
            w: Mat::xavier(rows, cols, rng),
            b,
            dw: Mat::zeros(rows, cols),
            db: vec![0.0; rows],
            adam_w: Adam::new(rows * cols),
            adam_b: Adam::new(rows),
        }
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimension.
    #[inline]
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One forward step. Returns `(h, c, cache)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn forward_step(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
    ) -> (Vec<f64>, Vec<f64>, StepCache) {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        assert_eq!(h_prev.len(), self.hidden_dim, "hidden dimension mismatch");
        let mut z = Vec::with_capacity(self.input_dim + self.hidden_dim);
        z.extend_from_slice(x);
        z.extend_from_slice(h_prev);
        let mut pre = self.w.matvec(&z);
        add_assign(&mut pre, &self.b);
        let h_d = self.hidden_dim;
        let i: Vec<f64> = pre[0..h_d].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f64> = pre[h_d..2 * h_d].iter().map(|&v| sigmoid(v)).collect();
        let o: Vec<f64> = pre[2 * h_d..3 * h_d].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f64> = pre[3 * h_d..4 * h_d].iter().map(|&v| v.tanh()).collect();
        let c: Vec<f64> = (0..h_d).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
        let h: Vec<f64> = (0..h_d).map(|j| o[j] * c[j].tanh()).collect();
        let cache = StepCache {
            z,
            i,
            f,
            o,
            g,
            c_prev: c_prev.to_vec(),
            c: c.clone(),
        };
        (h, c, cache)
    }

    /// One backward step: given `dh` and `dc` flowing into this step's
    /// outputs, accumulates weight gradients and returns
    /// `(dx, dh_prev, dc_prev)`.
    pub fn backward_step(
        &mut self,
        cache: &StepCache,
        dh: &[f64],
        dc_in: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h_d = self.hidden_dim;
        let mut dpre = vec![0.0; 4 * h_d];
        for j in 0..h_d {
            let tanh_c = cache.c[j].tanh();
            let do_ = dh[j] * tanh_c;
            let dc = dc_in[j] + dh[j] * cache.o[j] * (1.0 - tanh_c * tanh_c);
            let di = dc * cache.g[j];
            let df = dc * cache.c_prev[j];
            let dg = dc * cache.i[j];
            dpre[j] = di * cache.i[j] * (1.0 - cache.i[j]);
            dpre[h_d + j] = df * cache.f[j] * (1.0 - cache.f[j]);
            dpre[2 * h_d + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
            dpre[3 * h_d + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
        }
        self.dw.add_outer(&dpre, &cache.z);
        add_assign(&mut self.db, &dpre);
        let dz = self.w.matvec_t(&dpre);
        let dx = dz[0..self.input_dim].to_vec();
        let dh_prev = dz[self.input_dim..].to_vec();
        // dc_prev = dc * f, where dc is recomputed per element.
        let dc_prev: Vec<f64> = (0..h_d)
            .map(|j| {
                let tanh_c = cache.c[j].tanh();
                let dc = dc_in[j] + dh[j] * cache.o[j] * (1.0 - tanh_c * tanh_c);
                dc * cache.f[j]
            })
            .collect();
        (dx, dh_prev, dc_prev)
    }

    /// Runs the whole batched sequence through this layer.
    ///
    /// `x_flat` packs the per-step inputs column-wise as
    /// `input_dim × (steps·batch)`; the returned hidden states use the
    /// same layout. The input projection `W_x·X` is computed as a
    /// single matmul before the time loop; only the recurrent product
    /// `W_h·H_{t-1}` remains per-step.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or zero `steps`/`batch`.
    pub fn forward_seq(&self, x_flat: &Mat, steps: usize, batch: usize) -> (Mat, LayerSeqCache) {
        assert_eq!(x_flat.rows(), self.input_dim, "input dimension mismatch");
        assert_eq!(x_flat.cols(), steps * batch, "flat layout mismatch");
        let (w_x, w_h) = self.split_weights();
        let p_flat = w_x.matmul(x_flat);
        let (h_flat, cache) = self.forward_seq_inner(
            &w_h,
            &p_flat,
            None,
            steps,
            batch,
            SeqInput::Flat(x_flat.clone()),
        );
        (h_flat, cache)
    }

    /// Like [`LstmLayer::forward_seq`] but for an input that is
    /// *constant across timesteps* (the decoder conditioning on `z`):
    /// `x0` is `input_dim × batch` and its projection is computed once
    /// instead of per step.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or zero `steps`/`batch`.
    pub fn forward_seq_const(&self, x0: &Mat, steps: usize) -> (Mat, LayerSeqCache) {
        assert_eq!(x0.rows(), self.input_dim, "input dimension mismatch");
        let batch = x0.cols();
        let (w_x, w_h) = self.split_weights();
        let p0 = w_x.matmul(x0);
        let (h_flat, cache) = self.forward_seq_inner(
            &w_h,
            &p0,
            Some(&p0),
            steps,
            batch,
            SeqInput::Const(x0.clone()),
        );
        (h_flat, cache)
    }

    fn split_weights(&self) -> (Mat, Mat) {
        (
            self.w.col_block(0, self.input_dim),
            self.w
                .col_block(self.input_dim, self.input_dim + self.hidden_dim),
        )
    }

    /// Shared forward body: `p` is either the full projected input
    /// (`4h × T·B`, `p_const == None`) or ignored in favor of the
    /// per-step constant projection `p_const` (`4h × B`).
    fn forward_seq_inner(
        &self,
        w_h: &Mat,
        p: &Mat,
        p_const: Option<&Mat>,
        steps: usize,
        batch: usize,
        x: SeqInput,
    ) -> (Mat, LayerSeqCache) {
        assert!(steps > 0 && batch > 0, "empty batched sequence");
        let h_d = self.hidden_dim;
        let tb = steps * batch;
        let mut h_flat = Mat::zeros(h_d, tb);
        let mut cache = LayerSeqCache {
            x,
            hprev_flat: Mat::zeros(h_d, tb),
            i_flat: Mat::zeros(h_d, tb),
            f_flat: Mat::zeros(h_d, tb),
            o_flat: Mat::zeros(h_d, tb),
            g_flat: Mat::zeros(h_d, tb),
            c_flat: Mat::zeros(h_d, tb),
            cprev_flat: Mat::zeros(h_d, tb),
            steps,
            batch,
        };
        let mut h_prev = Mat::zeros(h_d, batch);
        let mut c_prev = Mat::zeros(h_d, batch);
        for t in 0..steps {
            let mut pre = match p_const {
                Some(p0) => p0.clone(),
                None => p.col_block(t * batch, (t + 1) * batch),
            };
            pre.add_mat(&w_h.matmul(&h_prev));
            pre.add_row_broadcast(&self.b);
            let mut h_t = Mat::zeros(h_d, batch);
            let mut c_t = Mat::zeros(h_d, batch);
            for j in 0..h_d {
                for s in 0..batch {
                    let i = sigmoid(pre.get(j, s));
                    let f = sigmoid(pre.get(h_d + j, s));
                    let o = sigmoid(pre.get(2 * h_d + j, s));
                    let g = pre.get(3 * h_d + j, s).tanh();
                    let cp = c_prev.get(j, s);
                    let c = f * cp + i * g;
                    *cache.i_flat.get_mut(j, t * batch + s) = i;
                    *cache.f_flat.get_mut(j, t * batch + s) = f;
                    *cache.o_flat.get_mut(j, t * batch + s) = o;
                    *cache.g_flat.get_mut(j, t * batch + s) = g;
                    *cache.cprev_flat.get_mut(j, t * batch + s) = cp;
                    *cache.c_flat.get_mut(j, t * batch + s) = c;
                    *c_t.get_mut(j, s) = c;
                    *h_t.get_mut(j, s) = o * c.tanh();
                }
            }
            cache.hprev_flat.set_col_block(t * batch, &h_prev);
            h_flat.set_col_block(t * batch, &h_t);
            h_prev = h_t;
            c_prev = c_t;
        }
        (h_flat, cache)
    }

    /// Backward pass of a batched sequence. `d_h_flat` carries the
    /// gradient flowing into every hidden state (`h × T·B`), `d_last_c`
    /// optionally injects gradient into the final cell state
    /// (`h × batch`). Weight and bias gradients are *accumulated* into
    /// `grads`; the return value is the input gradient — `in × T·B`
    /// for a [`LstmLayer::forward_seq`] cache, `in × batch` (summed
    /// over steps) for a [`LstmLayer::forward_seq_const`] cache.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward_seq(
        &self,
        cache: &LayerSeqCache,
        d_h_flat: &Mat,
        d_last_c: Option<&Mat>,
        grads: &mut LayerGrads,
    ) -> Mat {
        let (steps, batch) = (cache.steps, cache.batch);
        let h_d = self.hidden_dim;
        assert_eq!(d_h_flat.rows(), h_d, "gradient rows mismatch");
        assert_eq!(d_h_flat.cols(), steps * batch, "gradient layout mismatch");
        assert_eq!(grads.dw.rows(), self.w.rows(), "grad buffer mismatch");
        assert_eq!(grads.dw.cols(), self.w.cols(), "grad buffer mismatch");
        let (w_x, w_h) = self.split_weights();
        let mut dpre_flat = Mat::zeros(4 * h_d, steps * batch);
        let mut dh_next = Mat::zeros(h_d, batch);
        let mut dc_next = match d_last_c {
            Some(dc) => {
                assert_eq!(dc.rows(), h_d, "d_last_c rows mismatch");
                assert_eq!(dc.cols(), batch, "d_last_c cols mismatch");
                dc.clone()
            }
            None => Mat::zeros(h_d, batch),
        };
        for t in (0..steps).rev() {
            let mut dpre_t = Mat::zeros(4 * h_d, batch);
            let mut dc_prev = Mat::zeros(h_d, batch);
            for j in 0..h_d {
                for s in 0..batch {
                    let col = t * batch + s;
                    let dh = d_h_flat.get(j, col) + dh_next.get(j, s);
                    let i = cache.i_flat.get(j, col);
                    let f = cache.f_flat.get(j, col);
                    let o = cache.o_flat.get(j, col);
                    let g = cache.g_flat.get(j, col);
                    let c = cache.c_flat.get(j, col);
                    let cp = cache.cprev_flat.get(j, col);
                    let tanh_c = c.tanh();
                    let do_ = dh * tanh_c;
                    let dc = dc_next.get(j, s) + dh * o * (1.0 - tanh_c * tanh_c);
                    let di = dc * g;
                    let df = dc * cp;
                    let dg = dc * i;
                    *dpre_t.get_mut(j, s) = di * i * (1.0 - i);
                    *dpre_t.get_mut(h_d + j, s) = df * f * (1.0 - f);
                    *dpre_t.get_mut(2 * h_d + j, s) = do_ * o * (1.0 - o);
                    *dpre_t.get_mut(3 * h_d + j, s) = dg * (1.0 - g * g);
                    *dc_prev.get_mut(j, s) = dc * f;
                }
            }
            dpre_flat.set_col_block(t * batch, &dpre_t);
            dh_next = w_h.matmul_tn(&dpre_t);
            dc_next = dc_prev;
        }
        add_assign(&mut grads.db, &dpre_flat.row_sums());
        grads
            .dw
            .add_col_block(self.input_dim, &dpre_flat.matmul_nt(&cache.hprev_flat));
        match &cache.x {
            SeqInput::Flat(x_flat) => {
                grads.dw.add_col_block(0, &dpre_flat.matmul_nt(x_flat));
                w_x.matmul_tn(&dpre_flat)
            }
            SeqInput::Const(x0) => {
                // Constant input: both the weight and the input gradient
                // collapse over timesteps first.
                let mut dpre_sum = Mat::zeros(4 * h_d, batch);
                for t in 0..steps {
                    dpre_sum.add_mat(&dpre_flat.col_block(t * batch, (t + 1) * batch));
                }
                grads.dw.add_col_block(0, &dpre_sum.matmul_nt(x0));
                w_x.matmul_tn(&dpre_sum)
            }
        }
    }

    /// A zeroed gradient buffer shaped for this layer.
    pub fn new_grads(&self) -> LayerGrads {
        LayerGrads {
            dw: Mat::zeros(self.w.rows(), self.w.cols()),
            db: vec![0.0; self.b.len()],
        }
    }

    /// Folds an external gradient buffer into the layer's accumulated
    /// gradients (same shape as produced by [`LstmLayer::new_grads`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate_grads(&mut self, g: &LayerGrads) {
        self.dw.add_mat(&g.dw);
        add_assign(&mut self.db, &g.db);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.zero();
        self.db.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Applies an Adam step with the accumulated gradients.
    pub fn step(&mut self, lr: f64) {
        self.adam_w.step(self.w.data_mut(), self.dw.data(), lr);
        self.adam_b.step(&mut self.b, &self.db, lr);
    }

    /// Raw parameter access for gradient checking: `(w, b)`.
    pub fn params(&self) -> (&Mat, &[f64]) {
        (&self.w, &self.b)
    }

    /// Mutable parameter access for gradient checking.
    pub fn params_mut(&mut self) -> (&mut Mat, &mut Vec<f64>) {
        (&mut self.w, &mut self.b)
    }

    /// Raw gradient access for gradient checking: `(dw, db)`.
    pub fn grads(&self) -> (&Mat, &[f64]) {
        (&self.dw, &self.db)
    }
}

/// A stack of LSTM layers run over a sequence.
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
}

/// Caches of a full sequence forward pass (per step, per layer).
#[derive(Debug, Clone, Default)]
pub struct SeqCache {
    steps: Vec<Vec<StepCache>>,
}

/// Caches of a batched sequence forward pass (per layer).
#[derive(Debug, Clone)]
pub struct SeqBatchCache {
    layers: Vec<LayerSeqCache>,
    steps: usize,
    batch: usize,
}

impl SeqBatchCache {
    /// Steps per sequence in the cached pass.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Samples per minibatch in the cached pass.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl Lstm {
    /// Creates a stack: the first layer takes `input_dim`, each further
    /// layer takes the previous layer's hidden state.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero.
    pub fn new<R: Rng>(input_dim: usize, hidden_dim: usize, layers: usize, rng: &mut R) -> Self {
        assert!(layers > 0, "need at least one layer");
        let mut v = Vec::with_capacity(layers);
        v.push(LstmLayer::new(input_dim, hidden_dim, rng));
        for _ in 1..layers {
            v.push(LstmLayer::new(hidden_dim, hidden_dim, rng));
        }
        Lstm { layers: v }
    }

    /// Number of layers.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Hidden dimension.
    #[inline]
    pub fn hidden_dim(&self) -> usize {
        self.layers[0].hidden_dim()
    }

    /// The layers (for gradient checking).
    pub fn layers_mut(&mut self) -> &mut [LstmLayer] {
        &mut self.layers
    }

    /// Runs the stack over `inputs`, returning the top-layer hidden
    /// state at every step and the cache for backprop.
    pub fn forward(&self, inputs: &[Vec<f64>]) -> (Vec<Vec<f64>>, SeqCache) {
        let h_d = self.hidden_dim();
        let mut h = vec![vec![0.0; h_d]; self.layers.len()];
        let mut c = vec![vec![0.0; h_d]; self.layers.len()];
        let mut top = Vec::with_capacity(inputs.len());
        let mut cache = SeqCache::default();
        for x in inputs {
            let mut layer_caches = Vec::with_capacity(self.layers.len());
            let mut cur = x.clone();
            for (l, layer) in self.layers.iter().enumerate() {
                let (nh, nc, sc) = layer.forward_step(&cur, &h[l], &c[l]);
                cur = nh.clone();
                h[l] = nh;
                c[l] = nc;
                layer_caches.push(sc);
            }
            top.push(h.last().expect("at least one layer").clone());
            cache.steps.push(layer_caches);
        }
        (top, cache)
    }

    /// Backpropagates through time. `d_top[t]` is the loss gradient on
    /// the top-layer hidden state at step `t`; `d_last_c` optionally
    /// injects gradient into the final cell state of the top layer.
    /// Returns the gradient w.r.t. each input vector.
    pub fn backward(
        &mut self,
        cache: &SeqCache,
        d_top: &[Vec<f64>],
        d_last_c: Option<&[f64]>,
    ) -> Vec<Vec<f64>> {
        let steps = cache.steps.len();
        assert_eq!(d_top.len(), steps, "gradient per step required");
        let h_d = self.hidden_dim();
        let nl = self.layers.len();
        let mut dh_next = vec![vec![0.0; h_d]; nl];
        let mut dc_next = vec![vec![0.0; h_d]; nl];
        if let Some(dc) = d_last_c {
            dc_next[nl - 1] = dc.to_vec();
        }
        let mut d_inputs = vec![Vec::new(); steps];
        for t in (0..steps).rev() {
            // Gradient flowing into the top layer at step t.
            let mut d_from_above = d_top[t].clone();
            for l in (0..nl).rev() {
                let mut dh = dh_next[l].clone();
                add_assign(&mut dh, &d_from_above);
                let (dx, dh_prev, dc_prev) =
                    self.layers[l].backward_step(&cache.steps[t][l], &dh, &dc_next[l]);
                dh_next[l] = dh_prev;
                dc_next[l] = dc_prev;
                d_from_above = dx;
            }
            d_inputs[t] = d_from_above;
        }
        d_inputs
    }

    /// Batched forward over a packed minibatch: `x_flat` is
    /// `input_dim × (steps·batch)` (column `t·batch + s` is step `t` of
    /// sample `s`). Runs layer-major — each layer completes the whole
    /// sequence before the next starts — and returns the top layer's
    /// packed hidden states plus the cache for
    /// [`Lstm::backward_batch`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn forward_batch(&self, x_flat: &Mat, steps: usize, batch: usize) -> (Mat, SeqBatchCache) {
        let mut cache = SeqBatchCache {
            layers: Vec::with_capacity(self.layers.len()),
            steps,
            batch,
        };
        let mut cur = x_flat.clone();
        for layer in &self.layers {
            let (h_flat, lc) = layer.forward_seq(&cur, steps, batch);
            cache.layers.push(lc);
            cur = h_flat;
        }
        (cur, cache)
    }

    /// Batched forward where the *first* layer's input is constant
    /// across timesteps (`x0` is `input_dim × batch`) — the decoder
    /// conditioning pattern. Higher layers run in flat mode.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn forward_batch_const(&self, x0: &Mat, steps: usize) -> (Mat, SeqBatchCache) {
        let batch = x0.cols();
        let mut cache = SeqBatchCache {
            layers: Vec::with_capacity(self.layers.len()),
            steps,
            batch,
        };
        let (mut cur, lc) = self.layers[0].forward_seq_const(x0, steps);
        cache.layers.push(lc);
        for layer in &self.layers[1..] {
            let (h_flat, lc) = layer.forward_seq(&cur, steps, batch);
            cache.layers.push(lc);
            cur = h_flat;
        }
        (cur, cache)
    }

    /// Batched backward through the stack. `d_top_flat` is the loss
    /// gradient on the top layer's packed hidden states; `d_last_c`
    /// optionally injects gradient into the top layer's final cell
    /// state (`hidden × batch`). Per-layer gradients accumulate into
    /// `grads` (one buffer per layer, see [`Lstm::new_grad_buffers`]).
    /// Returns the gradient w.r.t. the first layer's input — flat for a
    /// [`Lstm::forward_batch`] cache, per-sample (`in × batch`) for a
    /// [`Lstm::forward_batch_const`] cache.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the layer count.
    pub fn backward_batch(
        &self,
        cache: &SeqBatchCache,
        d_top_flat: &Mat,
        d_last_c: Option<&Mat>,
        grads: &mut [LayerGrads],
    ) -> Mat {
        assert_eq!(grads.len(), self.layers.len(), "one grad buffer per layer");
        let nl = self.layers.len();
        let mut d = d_top_flat.clone();
        for l in (0..nl).rev() {
            let dc = if l == nl - 1 { d_last_c } else { None };
            d = self.layers[l].backward_seq(&cache.layers[l], &d, dc, &mut grads[l]);
        }
        d
    }

    /// Zeroed per-layer gradient buffers for [`Lstm::backward_batch`].
    pub fn new_grad_buffers(&self) -> Vec<LayerGrads> {
        self.layers.iter().map(LstmLayer::new_grads).collect()
    }

    /// Folds external per-layer gradient buffers into the stack's
    /// accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics on a layer-count mismatch.
    pub fn accumulate_grads(&mut self, grads: &[LayerGrads]) {
        assert_eq!(grads.len(), self.layers.len(), "one grad buffer per layer");
        for (l, g) in self.layers.iter_mut().zip(grads) {
            l.accumulate_grads(g);
        }
    }

    /// Clears gradients in all layers.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Adam step on all layers.
    pub fn step(&mut self, lr: f64) {
        for l in &mut self.layers {
            l.step(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Scalar loss used for gradient checking: sum of squares of all
    /// top-layer hidden states.
    fn loss_of(lstm: &Lstm, inputs: &[Vec<f64>]) -> f64 {
        let (top, _) = lstm.forward(inputs);
        top.iter().flatten().map(|&v| v * v).sum::<f64>() * 0.5
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(3, 5, 2, &mut rng);
        let inputs = vec![vec![0.1, -0.2, 0.3]; 7];
        let (top, cache) = lstm.forward(&inputs);
        assert_eq!(top.len(), 7);
        assert_eq!(top[0].len(), 5);
        assert_eq!(cache.steps.len(), 7);
        assert_eq!(cache.steps[0].len(), 2);
    }

    #[test]
    fn hidden_state_carries_memory() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(2, 4, 1, &mut rng);
        // Same final input, different first input → different final h.
        let (a, _) = lstm.forward(&[vec![1.0, 0.0], vec![0.0, 0.0]]);
        let (b, _) = lstm.forward(&[vec![0.0, 1.0], vec![0.0, 0.0]]);
        let diff: f64 = a[1].iter().zip(&b[1]).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "LSTM forgot its first input entirely");
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(2, 3, 2, &mut rng);
        let inputs = vec![vec![0.5, -0.3], vec![-0.1, 0.8], vec![0.2, 0.2]];
        // Analytic gradients.
        let (top, cache) = lstm.forward(&inputs);
        let d_top: Vec<Vec<f64>> = top.clone();
        lstm.zero_grad();
        lstm.backward(&cache, &d_top, None);
        let eps = 1e-5;
        for l in 0..lstm.num_layers() {
            let (w, _) = lstm.layers_mut()[l].params();
            let probe = [(0, 0), (1, 2), (w.rows() - 1, w.cols() - 1)];
            for &(r, c) in &probe {
                let analytic = lstm.layers_mut()[l].grads().0.get(r, c);
                let orig = lstm.layers_mut()[l].params().0.get(r, c);
                *lstm.layers_mut()[l].params_mut().0.get_mut(r, c) = orig + eps;
                let plus = loss_of(&lstm, &inputs);
                *lstm.layers_mut()[l].params_mut().0.get_mut(r, c) = orig - eps;
                let minus = loss_of(&lstm, &inputs);
                *lstm.layers_mut()[l].params_mut().0.get_mut(r, c) = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "layer {l} w[{r},{c}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(2, 3, 1, &mut rng);
        let inputs = vec![vec![0.4, -0.6], vec![0.1, 0.9]];
        let (top, cache) = lstm.forward(&inputs);
        lstm.zero_grad();
        let d_inputs = lstm.backward(&cache, &top.clone(), None);
        let eps = 1e-5;
        for t in 0..inputs.len() {
            for d in 0..2 {
                let mut plus_in = inputs.clone();
                plus_in[t][d] += eps;
                let mut minus_in = inputs.clone();
                minus_in[t][d] -= eps;
                let numeric = (loss_of(&lstm, &plus_in) - loss_of(&lstm, &minus_in)) / (2.0 * eps);
                assert!(
                    (d_inputs[t][d] - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "input grad [{t}][{d}]: {} vs {numeric}",
                    d_inputs[t][d]
                );
            }
        }
    }

    /// Packs per-sample sequences (all the same length) into the flat
    /// `dim × (T·B)` layout of the batched path.
    fn pack(seqs: &[Vec<Vec<f64>>]) -> Mat {
        let steps = seqs[0].len();
        let dim = seqs[0][0].len();
        let batch = seqs.len();
        let mut m = Mat::zeros(dim, steps * batch);
        for (s, seq) in seqs.iter().enumerate() {
            for (t, x) in seq.iter().enumerate() {
                m.set_col(t * batch + s, x);
            }
        }
        m
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn batched_forward_matches_per_step_oracle() {
        let mut rng = StdRng::seed_from_u64(10);
        let lstm = Lstm::new(3, 5, 2, &mut rng);
        let seqs: Vec<Vec<Vec<f64>>> = (0..4)
            .map(|s| {
                (0..6)
                    .map(|t| (0..3).map(|d| ((s + t + d) as f64).sin()).collect())
                    .collect()
            })
            .collect();
        let x_flat = pack(&seqs);
        let (h_flat, _) = lstm.forward_batch(&x_flat, 6, 4);
        for (s, seq) in seqs.iter().enumerate() {
            let (top, _) = lstm.forward(seq);
            for (t, h) in top.iter().enumerate() {
                assert_close(&h_flat.col_to_vec(t * 4 + s), h, 1e-12, "h");
            }
        }
    }

    #[test]
    fn batched_backward_matches_per_step_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        let steps = 5;
        let batch = 3;
        let seqs: Vec<Vec<Vec<f64>>> = (0..batch)
            .map(|s| {
                (0..steps)
                    .map(|t| {
                        (0..2)
                            .map(|d| ((s * 7 + t * 3 + d) as f64 * 0.37).cos())
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Oracle: per-sample forward/backward, gradients summed over
        // the batch by the layer's own accumulation.
        let mut oracle = Lstm::new(2, 4, 2, &mut rng);
        let batched = oracle.clone();
        oracle.zero_grad();
        let mut d_inputs_oracle = Vec::new();
        for seq in &seqs {
            let (top, cache) = oracle.forward(seq);
            let d_top: Vec<Vec<f64>> = top
                .iter()
                .map(|h| h.iter().map(|v| v * 0.5).collect())
                .collect();
            d_inputs_oracle.push(oracle.backward(&cache, &d_top, None));
        }
        // Batched: one pass over the packed minibatch with the same
        // loss gradient (0.5·h on every hidden state).
        let x_flat = pack(&seqs);
        let (h_flat, cache) = batched.forward_batch(&x_flat, steps, batch);
        let mut d_top_flat = h_flat.clone();
        d_top_flat.scale(0.5);
        let mut grads = batched.new_grad_buffers();
        let dx_flat = batched.backward_batch(&cache, &d_top_flat, None, &mut grads);
        // Input gradients agree per sample and step.
        for (s, d_seq) in d_inputs_oracle.iter().enumerate() {
            for (t, d) in d_seq.iter().enumerate() {
                assert_close(&dx_flat.col_to_vec(t * batch + s), d, 1e-9, "dx");
            }
        }
        // Weight/bias gradients agree per layer.
        for (l, g) in grads.iter().enumerate() {
            let (dw_o, db_o) = oracle.layers_mut()[l].grads();
            assert_close(g.dw.data(), dw_o.data(), 1e-9, "dw");
            assert_close(&g.db, db_o, 1e-9, "db");
        }
    }

    #[test]
    fn batched_const_input_matches_repeated_input() {
        // forward_batch_const must agree with forward_batch fed the
        // same vector at every step, and its backward must return the
        // step-summed input gradient.
        let mut rng = StdRng::seed_from_u64(12);
        let lstm = Lstm::new(4, 3, 2, &mut rng);
        let steps = 4;
        let batch = 2;
        let x0 = {
            let mut m = Mat::zeros(4, batch);
            m.set_col(0, &[0.3, -0.2, 0.8, 0.1]);
            m.set_col(1, &[-0.6, 0.4, 0.0, 0.9]);
            m
        };
        let mut x_flat = Mat::zeros(4, steps * batch);
        for t in 0..steps {
            x_flat.set_col_block(t * batch, &x0);
        }
        let (h_const, cache_const) = lstm.forward_batch_const(&x0, steps);
        let (h_flat, cache_flat) = lstm.forward_batch(&x_flat, steps, batch);
        assert_close(h_const.data(), h_flat.data(), 1e-12, "h_const");

        let d_top = h_flat.clone();
        let mut g_const = lstm.new_grad_buffers();
        let mut g_flat = lstm.new_grad_buffers();
        let dx0 = lstm.backward_batch(&cache_const, &d_top, None, &mut g_const);
        let dx_flat = lstm.backward_batch(&cache_flat, &d_top, None, &mut g_flat);
        for l in 0..lstm.num_layers() {
            assert_close(g_const[l].dw.data(), g_flat[l].dw.data(), 1e-9, "dw");
            assert_close(&g_const[l].db, &g_flat[l].db, 1e-9, "db");
        }
        // dx0 equals the flat input gradient summed over steps.
        for s in 0..batch {
            let mut want = vec![0.0; 4];
            for t in 0..steps {
                add_assign(&mut want, &dx_flat.col_to_vec(t * batch + s));
            }
            assert_close(&dx0.col_to_vec(s), &want, 1e-9, "dx0");
        }
    }

    #[test]
    fn external_grads_fold_into_layer_accumulators() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lstm = Lstm::new(2, 3, 1, &mut rng);
        let mut bufs = lstm.new_grad_buffers();
        *bufs[0].dw.get_mut(0, 0) = 2.5;
        bufs[0].db[1] = -1.0;
        lstm.zero_grad();
        lstm.accumulate_grads(&bufs);
        lstm.accumulate_grads(&bufs);
        let (dw, db) = lstm.layers_mut()[0].grads();
        assert_eq!(dw.get(0, 0), 5.0);
        assert_eq!(db[1], -2.0);
    }

    #[test]
    fn training_reduces_loss() {
        // Teach a tiny LSTM to output zeros.
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(2, 4, 1, &mut rng);
        let inputs = vec![vec![1.0, -1.0], vec![0.5, 0.5], vec![-0.7, 0.9]];
        let initial = loss_of(&lstm, &inputs);
        for _ in 0..200 {
            let (top, cache) = lstm.forward(&inputs);
            lstm.zero_grad();
            lstm.backward(&cache, &top.clone(), None);
            lstm.step(0.01);
        }
        let final_loss = loss_of(&lstm, &inputs);
        assert!(
            final_loss < initial * 0.1,
            "loss {initial} -> {final_loss} did not shrink"
        );
    }
}
