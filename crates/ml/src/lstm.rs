//! A from-scratch LSTM with manual backpropagation through time.
//!
//! Gate order in the packed weight matrix is `[i, f, o, g]` (input,
//! forget, output, candidate). Batch size is 1 (one sequence at a
//! time), which keeps the code auditable; the training sets here are
//! small enough that this is not the bottleneck.

use rand::Rng;

use crate::linalg::{add_assign, sigmoid, Mat};
use crate::optim::Adam;

/// One LSTM layer with its parameters, gradients, and optimizer state.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    input_dim: usize,
    hidden_dim: usize,
    /// Packed gate weights: `4·hidden × (input + hidden)`.
    w: Mat,
    /// Packed gate biases: `4·hidden`.
    b: Vec<f64>,
    dw: Mat,
    db: Vec<f64>,
    adam_w: Adam,
    adam_b: Adam,
}

/// Cached activations of one forward step, needed by the backward pass.
#[derive(Debug, Clone)]
pub struct StepCache {
    z: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c_prev: Vec<f64>,
    c: Vec<f64>,
}

impl LstmLayer {
    /// Creates a layer with Xavier-initialized weights and a forget-gate
    /// bias of 1 (the standard trick for gradient flow).
    pub fn new<R: Rng>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let rows = 4 * hidden_dim;
        let cols = input_dim + hidden_dim;
        let mut b = vec![0.0; rows];
        for v in b.iter_mut().skip(hidden_dim).take(hidden_dim) {
            *v = 1.0; // forget gate
        }
        LstmLayer {
            input_dim,
            hidden_dim,
            w: Mat::xavier(rows, cols, rng),
            b,
            dw: Mat::zeros(rows, cols),
            db: vec![0.0; rows],
            adam_w: Adam::new(rows * cols),
            adam_b: Adam::new(rows),
        }
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden dimension.
    #[inline]
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One forward step. Returns `(h, c, cache)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn forward_step(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
    ) -> (Vec<f64>, Vec<f64>, StepCache) {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        assert_eq!(h_prev.len(), self.hidden_dim, "hidden dimension mismatch");
        let mut z = Vec::with_capacity(self.input_dim + self.hidden_dim);
        z.extend_from_slice(x);
        z.extend_from_slice(h_prev);
        let mut pre = self.w.matvec(&z);
        add_assign(&mut pre, &self.b);
        let h_d = self.hidden_dim;
        let i: Vec<f64> = pre[0..h_d].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f64> = pre[h_d..2 * h_d].iter().map(|&v| sigmoid(v)).collect();
        let o: Vec<f64> = pre[2 * h_d..3 * h_d].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f64> = pre[3 * h_d..4 * h_d].iter().map(|&v| v.tanh()).collect();
        let c: Vec<f64> = (0..h_d).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
        let h: Vec<f64> = (0..h_d).map(|j| o[j] * c[j].tanh()).collect();
        let cache = StepCache {
            z,
            i,
            f,
            o,
            g,
            c_prev: c_prev.to_vec(),
            c: c.clone(),
        };
        (h, c, cache)
    }

    /// One backward step: given `dh` and `dc` flowing into this step's
    /// outputs, accumulates weight gradients and returns
    /// `(dx, dh_prev, dc_prev)`.
    pub fn backward_step(
        &mut self,
        cache: &StepCache,
        dh: &[f64],
        dc_in: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h_d = self.hidden_dim;
        let mut dpre = vec![0.0; 4 * h_d];
        for j in 0..h_d {
            let tanh_c = cache.c[j].tanh();
            let do_ = dh[j] * tanh_c;
            let dc = dc_in[j] + dh[j] * cache.o[j] * (1.0 - tanh_c * tanh_c);
            let di = dc * cache.g[j];
            let df = dc * cache.c_prev[j];
            let dg = dc * cache.i[j];
            dpre[j] = di * cache.i[j] * (1.0 - cache.i[j]);
            dpre[h_d + j] = df * cache.f[j] * (1.0 - cache.f[j]);
            dpre[2 * h_d + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
            dpre[3 * h_d + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
        }
        self.dw.add_outer(&dpre, &cache.z);
        add_assign(&mut self.db, &dpre);
        let dz = self.w.matvec_t(&dpre);
        let dx = dz[0..self.input_dim].to_vec();
        let dh_prev = dz[self.input_dim..].to_vec();
        // dc_prev = dc * f, where dc is recomputed per element.
        let dc_prev: Vec<f64> = (0..h_d)
            .map(|j| {
                let tanh_c = cache.c[j].tanh();
                let dc = dc_in[j] + dh[j] * cache.o[j] * (1.0 - tanh_c * tanh_c);
                dc * cache.f[j]
            })
            .collect();
        (dx, dh_prev, dc_prev)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.zero();
        self.db.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Applies an Adam step with the accumulated gradients.
    pub fn step(&mut self, lr: f64) {
        self.adam_w.step(self.w.data_mut(), self.dw.data(), lr);
        self.adam_b.step(&mut self.b, &self.db, lr);
    }

    /// Raw parameter access for gradient checking: `(w, b)`.
    pub fn params(&self) -> (&Mat, &[f64]) {
        (&self.w, &self.b)
    }

    /// Mutable parameter access for gradient checking.
    pub fn params_mut(&mut self) -> (&mut Mat, &mut Vec<f64>) {
        (&mut self.w, &mut self.b)
    }

    /// Raw gradient access for gradient checking: `(dw, db)`.
    pub fn grads(&self) -> (&Mat, &[f64]) {
        (&self.dw, &self.db)
    }
}

/// A stack of LSTM layers run over a sequence.
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
}

/// Caches of a full sequence forward pass (per step, per layer).
#[derive(Debug, Clone, Default)]
pub struct SeqCache {
    steps: Vec<Vec<StepCache>>,
}

impl Lstm {
    /// Creates a stack: the first layer takes `input_dim`, each further
    /// layer takes the previous layer's hidden state.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero.
    pub fn new<R: Rng>(input_dim: usize, hidden_dim: usize, layers: usize, rng: &mut R) -> Self {
        assert!(layers > 0, "need at least one layer");
        let mut v = Vec::with_capacity(layers);
        v.push(LstmLayer::new(input_dim, hidden_dim, rng));
        for _ in 1..layers {
            v.push(LstmLayer::new(hidden_dim, hidden_dim, rng));
        }
        Lstm { layers: v }
    }

    /// Number of layers.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Hidden dimension.
    #[inline]
    pub fn hidden_dim(&self) -> usize {
        self.layers[0].hidden_dim()
    }

    /// The layers (for gradient checking).
    pub fn layers_mut(&mut self) -> &mut [LstmLayer] {
        &mut self.layers
    }

    /// Runs the stack over `inputs`, returning the top-layer hidden
    /// state at every step and the cache for backprop.
    pub fn forward(&self, inputs: &[Vec<f64>]) -> (Vec<Vec<f64>>, SeqCache) {
        let h_d = self.hidden_dim();
        let mut h = vec![vec![0.0; h_d]; self.layers.len()];
        let mut c = vec![vec![0.0; h_d]; self.layers.len()];
        let mut top = Vec::with_capacity(inputs.len());
        let mut cache = SeqCache::default();
        for x in inputs {
            let mut layer_caches = Vec::with_capacity(self.layers.len());
            let mut cur = x.clone();
            for (l, layer) in self.layers.iter().enumerate() {
                let (nh, nc, sc) = layer.forward_step(&cur, &h[l], &c[l]);
                cur = nh.clone();
                h[l] = nh;
                c[l] = nc;
                layer_caches.push(sc);
            }
            top.push(h.last().expect("at least one layer").clone());
            cache.steps.push(layer_caches);
        }
        (top, cache)
    }

    /// Backpropagates through time. `d_top[t]` is the loss gradient on
    /// the top-layer hidden state at step `t`; `d_last_c` optionally
    /// injects gradient into the final cell state of the top layer.
    /// Returns the gradient w.r.t. each input vector.
    pub fn backward(
        &mut self,
        cache: &SeqCache,
        d_top: &[Vec<f64>],
        d_last_c: Option<&[f64]>,
    ) -> Vec<Vec<f64>> {
        let steps = cache.steps.len();
        assert_eq!(d_top.len(), steps, "gradient per step required");
        let h_d = self.hidden_dim();
        let nl = self.layers.len();
        let mut dh_next = vec![vec![0.0; h_d]; nl];
        let mut dc_next = vec![vec![0.0; h_d]; nl];
        if let Some(dc) = d_last_c {
            dc_next[nl - 1] = dc.to_vec();
        }
        let mut d_inputs = vec![Vec::new(); steps];
        for t in (0..steps).rev() {
            // Gradient flowing into the top layer at step t.
            let mut d_from_above = d_top[t].clone();
            for l in (0..nl).rev() {
                let mut dh = dh_next[l].clone();
                add_assign(&mut dh, &d_from_above);
                let (dx, dh_prev, dc_prev) =
                    self.layers[l].backward_step(&cache.steps[t][l], &dh, &dc_next[l]);
                dh_next[l] = dh_prev;
                dc_next[l] = dc_prev;
                d_from_above = dx;
            }
            d_inputs[t] = d_from_above;
        }
        d_inputs
    }

    /// Clears gradients in all layers.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Adam step on all layers.
    pub fn step(&mut self, lr: f64) {
        for l in &mut self.layers {
            l.step(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Scalar loss used for gradient checking: sum of squares of all
    /// top-layer hidden states.
    fn loss_of(lstm: &Lstm, inputs: &[Vec<f64>]) -> f64 {
        let (top, _) = lstm.forward(inputs);
        top.iter().flatten().map(|&v| v * v).sum::<f64>() * 0.5
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(3, 5, 2, &mut rng);
        let inputs = vec![vec![0.1, -0.2, 0.3]; 7];
        let (top, cache) = lstm.forward(&inputs);
        assert_eq!(top.len(), 7);
        assert_eq!(top[0].len(), 5);
        assert_eq!(cache.steps.len(), 7);
        assert_eq!(cache.steps[0].len(), 2);
    }

    #[test]
    fn hidden_state_carries_memory() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(2, 4, 1, &mut rng);
        // Same final input, different first input → different final h.
        let (a, _) = lstm.forward(&[vec![1.0, 0.0], vec![0.0, 0.0]]);
        let (b, _) = lstm.forward(&[vec![0.0, 1.0], vec![0.0, 0.0]]);
        let diff: f64 = a[1].iter().zip(&b[1]).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "LSTM forgot its first input entirely");
    }

    #[test]
    fn gradient_check_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(2, 3, 2, &mut rng);
        let inputs = vec![vec![0.5, -0.3], vec![-0.1, 0.8], vec![0.2, 0.2]];
        // Analytic gradients.
        let (top, cache) = lstm.forward(&inputs);
        let d_top: Vec<Vec<f64>> = top.clone();
        lstm.zero_grad();
        lstm.backward(&cache, &d_top, None);
        let eps = 1e-5;
        for l in 0..lstm.num_layers() {
            let (w, _) = lstm.layers_mut()[l].params();
            let probe = [(0, 0), (1, 2), (w.rows() - 1, w.cols() - 1)];
            for &(r, c) in &probe {
                let analytic = lstm.layers_mut()[l].grads().0.get(r, c);
                let orig = lstm.layers_mut()[l].params().0.get(r, c);
                *lstm.layers_mut()[l].params_mut().0.get_mut(r, c) = orig + eps;
                let plus = loss_of(&lstm, &inputs);
                *lstm.layers_mut()[l].params_mut().0.get_mut(r, c) = orig - eps;
                let minus = loss_of(&lstm, &inputs);
                *lstm.layers_mut()[l].params_mut().0.get_mut(r, c) = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "layer {l} w[{r},{c}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(2, 3, 1, &mut rng);
        let inputs = vec![vec![0.4, -0.6], vec![0.1, 0.9]];
        let (top, cache) = lstm.forward(&inputs);
        lstm.zero_grad();
        let d_inputs = lstm.backward(&cache, &top.clone(), None);
        let eps = 1e-5;
        for t in 0..inputs.len() {
            for d in 0..2 {
                let mut plus_in = inputs.clone();
                plus_in[t][d] += eps;
                let mut minus_in = inputs.clone();
                minus_in[t][d] -= eps;
                let numeric = (loss_of(&lstm, &plus_in) - loss_of(&lstm, &minus_in)) / (2.0 * eps);
                assert!(
                    (d_inputs[t][d] - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "input grad [{t}][{d}]: {} vs {numeric}",
                    d_inputs[t][d]
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        // Teach a tiny LSTM to output zeros.
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(2, 4, 1, &mut rng);
        let inputs = vec![vec![1.0, -1.0], vec![0.5, 0.5], vec![-0.7, 0.9]];
        let initial = loss_of(&lstm, &inputs);
        for _ in 0..200 {
            let (top, cache) = lstm.forward(&inputs);
            lstm.zero_grad();
            lstm.backward(&cache, &top.clone(), None);
            lstm.step(0.01);
        }
        let final_loss = loss_of(&lstm, &inputs);
        assert!(
            final_loss < initial * 0.1,
            "loss {initial} -> {final_loss} did not shrink"
        );
    }
}
