//! # sdam-ml — machine-learned address-mapping selection
//!
//! The SDAM paper (§6.2) offers two automatic ways to reduce many
//! per-variable access patterns to a few address mappings:
//!
//! 1. **K-Means on bit-flip-rate vectors** — fast, works when variables
//!    are few ([`mod@kmeans`]).
//! 2. **DL-assisted K-Means** — an embedding-LSTM autoencoder over
//!    `(Δ, VID)` sequences learns a clustering-friendly representation;
//!    K-Means runs on the embeddings, and training continues with the
//!    joint loss `L_total = L_reconstruct + λ·L_cluster`
//!    ([`autoencoder`], [`dlkmeans`]).
//!
//! The paper trained with TensorFlow-era tooling on an i7 workstation;
//! we implement the model from scratch (manual backpropagation, Adam)
//! with the paper's hyper-parameters in [`config::TrainingConfig`]
//! (Table 2) and a downscaled `laptop()` preset used by the benches.
//!
//! ## Example: clustering stride patterns
//!
//! ```
//! use sdam_ml::kmeans::{kmeans, KMeansConfig};
//!
//! // Two obvious groups of 2-D points.
//! let points = vec![
//!     vec![0.0, 0.1], vec![0.1, 0.0], vec![0.05, 0.05],
//!     vec![1.0, 0.9], vec![0.9, 1.0], vec![0.95, 0.95],
//! ];
//! let result = kmeans(&points, &KMeansConfig { k: 2, ..Default::default() });
//! assert_eq!(result.assignments[0], result.assignments[1]);
//! assert_ne!(result.assignments[0], result.assignments[3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoencoder;
pub mod config;
pub mod dlkmeans;
pub mod embedding;
pub mod kmeans;
pub mod linalg;
pub mod lstm;
pub mod optim;
pub mod par;

pub use config::{TrainingConfig, TrainingError};
pub use kmeans::{kmeans, silhouette, Clustering, KMeansConfig};
