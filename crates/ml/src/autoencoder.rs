//! The embedding-LSTM autoencoder (paper Fig. 9).
//!
//! Input: a sequence of `(Δ, VID)` pairs, where Δ is the XOR of two
//! consecutive addresses and VID the variable id. Δ and VID are
//! embedded separately, concatenated, and fed to a stacked-LSTM
//! *encoder*; the final hidden state is the sequence embedding `z`. A
//! stacked-LSTM *decoder* conditioned on `z` reconstructs the Δ bit
//! pattern of every step through a sigmoid readout.
//!
//! Loss: the paper's Eq. 3 is an L1 over reconstructed Δ bits; we use
//! the standard binary-cross-entropy surrogate for per-bit targets
//! (identical minimizer for {0,1} targets, smooth gradients). The joint
//! phase adds the paper's clustering term:
//! `L_total = L_reconstruct + λ · ||z − µ_assigned||²`.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::embedding::Embedding;
use crate::linalg::{add_assign, sigmoid, Mat};
use crate::lstm::{LayerGrads, Lstm};
use crate::optim::Adam;
use crate::par::par_map_indexed;
use crate::TrainingConfig;

/// One training sample: a window of `(Δ, VID)` pairs plus the Δ bit
/// targets to reconstruct.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqSample {
    /// Δ vocabulary ids, one per step.
    pub delta_ids: Vec<usize>,
    /// VID vocabulary ids, one per step.
    pub vid_ids: Vec<usize>,
    /// Per-step Δ bit targets (each of width `bits`, values 0.0 / 1.0).
    pub delta_bits: Vec<Vec<f64>>,
}

impl SeqSample {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or non-binary targets.
    pub fn validate(&self, bits: usize) {
        assert_eq!(
            self.delta_ids.len(),
            self.vid_ids.len(),
            "id length mismatch"
        );
        assert_eq!(
            self.delta_ids.len(),
            self.delta_bits.len(),
            "target length mismatch"
        );
        assert!(!self.delta_ids.is_empty(), "empty sample");
        for b in &self.delta_bits {
            assert_eq!(b.len(), bits, "bit width mismatch");
            assert!(
                b.iter().all(|&v| v == 0.0 || v == 1.0),
                "targets must be binary"
            );
        }
    }
}

/// One entry of a weighted mini-batch for
/// [`LstmAutoencoder::train_minibatch`]: a window, its multiplicity
/// weight (deduplicated windows carry the count of their duplicates),
/// and an optional cluster-centroid target for the joint phase.
#[derive(Debug, Clone)]
pub struct MiniBatchItem<'a> {
    /// The training window.
    pub sample: &'a SeqSample,
    /// Positive weight of the sample in the batch objective.
    pub weight: f64,
    /// Centroid `µ` for the clustering term, when joint-training.
    pub target: Option<&'a [f64]>,
}

/// Per-work-item gradients of a batched pass. Produced by a pure
/// (`&self`) forward/backward so work items can run on any thread and
/// still reduce in a fixed order.
struct BatchGrads {
    enc: Vec<LayerGrads>,
    dec: Vec<LayerGrads>,
    d_delta: Mat,
    d_vid: Mat,
    dw_out: Mat,
    db_out: Vec<f64>,
}

/// Losses of one training step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepLoss {
    /// Reconstruction loss (BCE over Δ bits).
    pub reconstruct: f64,
    /// Clustering loss (`||z − µ||²`; 0 when no target given).
    pub cluster: f64,
}

impl StepLoss {
    /// The paper's `L_total = L_reconstruct + λ·L_cluster`.
    pub fn total(&self, lambda: f64) -> f64 {
        self.reconstruct + lambda * self.cluster
    }
}

/// The autoencoder model.
#[derive(Debug, Clone)]
pub struct LstmAutoencoder {
    delta_embed: Embedding,
    vid_embed: Embedding,
    encoder: Lstm,
    decoder: Lstm,
    w_out: Mat,
    b_out: Vec<f64>,
    dw_out: Mat,
    db_out: Vec<f64>,
    adam_w: Adam,
    adam_b: Adam,
    bits: usize,
    lambda: f64,
}

impl LstmAutoencoder {
    /// Builds a model for the given vocabularies and Δ bit width.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a vocabulary is empty.
    pub fn new(delta_vocab: usize, vid_vocab: usize, bits: usize, config: &TrainingConfig) -> Self {
        config.validate();
        assert!(
            delta_vocab > 0 && vid_vocab > 0,
            "vocabularies must be non-empty"
        );
        assert!(bits > 0, "bit width must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let e = config.embedding_dim;
        let h = config.hidden_dim;
        // Damp the VID embedding so two variables with identical access
        // patterns start with near-identical sequence embeddings; the Δ
        // pattern, not variable identity, should drive the clusters.
        let mut vid_embed = Embedding::new(vid_vocab, e, &mut rng);
        vid_embed.scale(0.05);
        LstmAutoencoder {
            delta_embed: Embedding::new(delta_vocab, e, &mut rng),
            vid_embed,
            encoder: Lstm::new(2 * e, h, config.layers, &mut rng),
            decoder: Lstm::new(h, h, config.layers, &mut rng),
            w_out: Mat::xavier(bits, h, &mut rng),
            b_out: vec![0.0; bits],
            dw_out: Mat::zeros(bits, h),
            db_out: vec![0.0; bits],
            adam_w: Adam::new(bits * h),
            adam_b: Adam::new(bits),
            bits,
            lambda: config.lambda,
        }
    }

    /// The embedding dimension of `z` (the LSTM hidden size).
    pub fn embedding_dim(&self) -> usize {
        self.encoder.hidden_dim()
    }

    /// Encodes a sample into its embedding `z` (no gradients).
    pub fn embed(&self, sample: &SeqSample) -> Vec<f64> {
        sample.validate(self.bits);
        let inputs = self.encoder_inputs(sample);
        let (top, _) = self.encoder.forward(&inputs);
        top.last().expect("non-empty sample").clone()
    }

    /// Reconstruction loss of a sample without updating parameters.
    pub fn evaluate(&self, sample: &SeqSample) -> f64 {
        sample.validate(self.bits);
        let inputs = self.encoder_inputs(sample);
        let (top, _) = self.encoder.forward(&inputs);
        let z = top.last().expect("non-empty").clone();
        let dec_in = vec![z; sample.delta_ids.len()];
        let (dec_top, _) = self.decoder.forward(&dec_in);
        let mut loss = 0.0;
        for (t, h) in dec_top.iter().enumerate() {
            let mut logits = self.w_out.matvec(h);
            add_assign(&mut logits, &self.b_out);
            for (j, &l) in logits.iter().enumerate() {
                loss += bce(sigmoid(l), sample.delta_bits[t][j]);
            }
        }
        loss / (dec_top.len() * self.bits) as f64
    }

    /// One SGD step on a sample. `cluster_target`, when given, adds the
    /// joint clustering term pulling `z` toward its centroid.
    ///
    /// # Panics
    ///
    /// Panics if the sample is inconsistent or the target has the wrong
    /// dimension.
    pub fn train_step(
        &mut self,
        sample: &SeqSample,
        cluster_target: Option<&[f64]>,
        lr: f64,
    ) -> StepLoss {
        self.zero_grad();
        let loss = self.forward_backward(sample, cluster_target);
        self.apply_step(lr);
        loss
    }

    /// One mini-batch step: gradients are averaged over the batch
    /// (each sample's contribution scaled by `1/batch.len()`) and
    /// applied once — smoother convergence than per-sample SGD on
    /// heterogeneous window sets. Returns the mean loss over the batch
    /// (both fields). A batch of one is exactly equivalent to
    /// [`LstmAutoencoder::train_step`] with no cluster target.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or inconsistent samples.
    pub fn train_batch(&mut self, batch: &[&SeqSample], lr: f64) -> StepLoss {
        assert!(!batch.is_empty(), "empty mini-batch");
        let scale = 1.0 / batch.len() as f64;
        let mut total = StepLoss::default();
        self.zero_grad();
        for s in batch {
            let l = self.forward_backward_scaled(s, None, scale);
            total.reconstruct += l.reconstruct * scale;
            total.cluster += l.cluster * scale;
        }
        self.apply_step(lr);
        total
    }

    /// One optimizer step over a weighted mini-batch through the
    /// batched kernels. The objective is the weighted mean of the
    /// per-sample joint losses (weights normalized by their sum), so a
    /// deduplicated window with weight *w* contributes exactly like *w*
    /// duplicate windows.
    ///
    /// Samples are grouped by sequence length (the kernels need
    /// rectangular batches), groups are split into bounded work items,
    /// and — when `threads > 1` — the per-item forward/backward fans
    /// out over scoped threads. Each item produces gradients in its own
    /// buffers which are reduced *in input order*, so the parameter
    /// update is bit-identical for every thread count.
    ///
    /// Returns the weighted-mean loss over the batch.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, non-positive weights, or inconsistent
    /// samples.
    pub fn train_minibatch(
        &mut self,
        items: &[MiniBatchItem<'_>],
        lr: f64,
        threads: usize,
    ) -> StepLoss {
        assert!(!items.is_empty(), "empty mini-batch");
        let w_total: f64 = items.iter().map(|it| it.weight).sum();
        assert!(
            w_total.is_finite() && items.iter().all(|it| it.weight > 0.0),
            "weights must be positive and finite"
        );
        let mut by_len: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, it) in items.iter().enumerate() {
            by_len.entry(it.sample.delta_ids.len()).or_default().push(i);
        }
        // Bounded rectangular work items: big enough to amortize the
        // matmuls, small enough to fan out.
        const MAX_GROUP: usize = 16;
        let work: Vec<Vec<usize>> = by_len
            .values()
            .flat_map(|idxs| idxs.chunks(MAX_GROUP).map(<[usize]>::to_vec))
            .collect();
        let model: &LstmAutoencoder = &*self;
        let results = par_map_indexed(threads, work, |_, idxs| {
            let group: Vec<(&SeqSample, f64, Option<&[f64]>)> = idxs
                .iter()
                .map(|&i| (items[i].sample, items[i].weight / w_total, items[i].target))
                .collect();
            model.forward_backward_batch(&group)
        });
        self.zero_grad();
        let mut total = StepLoss::default();
        for (loss, g) in &results {
            total.reconstruct += loss.reconstruct;
            total.cluster += loss.cluster;
            self.encoder.accumulate_grads(&g.enc);
            self.decoder.accumulate_grads(&g.dec);
            self.delta_embed.accumulate_dense(&g.d_delta);
            self.vid_embed.accumulate_dense(&g.d_vid);
            self.dw_out.add_mat(&g.dw_out);
            add_assign(&mut self.db_out, &g.db_out);
        }
        self.apply_step(lr);
        total
    }

    /// Encodes many samples through the batched kernels (no gradients),
    /// optionally fanning rectangular groups out over `threads`.
    /// Returns one embedding per sample, in input order.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent samples.
    pub fn embed_batch(&self, samples: &[&SeqSample], threads: usize) -> Vec<Vec<f64>> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut by_len: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, s) in samples.iter().enumerate() {
            s.validate(self.bits);
            by_len.entry(s.delta_ids.len()).or_default().push(i);
        }
        const MAX_GROUP: usize = 32;
        let work: Vec<Vec<usize>> = by_len
            .values()
            .flat_map(|idxs| idxs.chunks(MAX_GROUP).map(<[usize]>::to_vec))
            .collect();
        let results = par_map_indexed(threads, work, |_, idxs| {
            let group: Vec<&SeqSample> = idxs.iter().map(|&i| samples[i]).collect();
            let steps = group[0].delta_ids.len();
            let b = group.len();
            let x_flat = self.pack_encoder_inputs(&group);
            let (top, _) = self.encoder.forward_batch(&x_flat, steps, b);
            let z = top.col_block((steps - 1) * b, steps * b);
            idxs.iter()
                .enumerate()
                .map(|(s, &i)| (i, z.col_to_vec(s)))
                .collect::<Vec<_>>()
        });
        let mut out = vec![Vec::new(); samples.len()];
        for pairs in results {
            for (i, zv) in pairs {
                out[i] = zv;
            }
        }
        out
    }

    /// Packs a rectangular group of samples into the encoder's flat
    /// `2e × (T·B)` input layout (Δ embedding stacked over VID
    /// embedding, column `t·B + s`).
    fn pack_encoder_inputs(&self, group: &[&SeqSample]) -> Mat {
        let steps = group[0].delta_ids.len();
        let b = group.len();
        let e = self.delta_embed.dim();
        let mut x_flat = Mat::zeros(2 * e, steps * b);
        for (s, sample) in group.iter().enumerate() {
            assert_eq!(sample.delta_ids.len(), steps, "mixed lengths in group");
            for t in 0..steps {
                let col = t * b + s;
                let dv = self.delta_embed.lookup(sample.delta_ids[t]);
                let vv = self.vid_embed.lookup(sample.vid_ids[t]);
                for j in 0..e {
                    *x_flat.get_mut(j, col) = dv[j];
                    *x_flat.get_mut(e + j, col) = vv[j];
                }
            }
        }
        x_flat
    }

    /// Pure batched forward + backward over one rectangular group.
    /// `group` holds `(sample, scale, target)` where `scale` is the
    /// sample's normalized weight (already divided by the batch's
    /// total weight). Returns the scaled loss contribution and the
    /// gradients in fresh buffers.
    fn forward_backward_batch(
        &self,
        group: &[(&SeqSample, f64, Option<&[f64]>)],
    ) -> (StepLoss, BatchGrads) {
        let b = group.len();
        let steps = group[0].0.delta_ids.len();
        let h = self.encoder.hidden_dim();
        let e = self.delta_embed.dim();
        for (sample, _, _) in group {
            sample.validate(self.bits);
        }
        let samples: Vec<&SeqSample> = group.iter().map(|(s, _, _)| *s).collect();
        let x_flat = self.pack_encoder_inputs(&samples);
        let (enc_top, enc_cache) = self.encoder.forward_batch(&x_flat, steps, b);
        let z = enc_top.col_block((steps - 1) * b, steps * b);
        let (dec_top, dec_cache) = self.decoder.forward_batch_const(&z, steps);
        let mut logits = self.w_out.matmul(&dec_top);
        logits.add_row_broadcast(&self.b_out);

        let denom = (steps * self.bits) as f64;
        let mut dlogits = Mat::zeros(self.bits, steps * b);
        let mut recon_raw = vec![0.0; b];
        for t in 0..steps {
            for (s, (sample, scale, _)) in group.iter().enumerate() {
                let col = t * b + s;
                for j in 0..self.bits {
                    let p = sigmoid(logits.get(j, col));
                    let y = sample.delta_bits[t][j];
                    recon_raw[s] += bce(p, y);
                    *dlogits.get_mut(j, col) = scale * (p - y) / denom;
                }
            }
        }
        let mut grads = BatchGrads {
            enc: self.encoder.new_grad_buffers(),
            dec: self.decoder.new_grad_buffers(),
            d_delta: Mat::zeros(self.delta_embed.vocab(), e),
            d_vid: Mat::zeros(self.vid_embed.vocab(), e),
            dw_out: dlogits.matmul_nt(&dec_top),
            db_out: dlogits.row_sums(),
        };
        let d_dec_top = self.w_out.matmul_tn(&dlogits);
        let mut dz = self
            .decoder
            .backward_batch(&dec_cache, &d_dec_top, None, &mut grads.dec);

        let mut loss = StepLoss::default();
        for (s, (_, scale, target)) in group.iter().enumerate() {
            loss.reconstruct += scale * recon_raw[s] / denom;
            if let Some(mu) = target {
                assert_eq!(mu.len(), h, "centroid dimension mismatch");
                let mut csum = 0.0;
                for (j, &m) in mu.iter().enumerate() {
                    let diff = z.get(j, s) - m;
                    csum += diff * diff;
                    *dz.get_mut(j, s) += scale * 2.0 * self.lambda * diff;
                }
                loss.cluster += scale * csum;
            }
        }
        let mut d_enc_top = Mat::zeros(h, steps * b);
        d_enc_top.set_col_block((steps - 1) * b, &dz);
        let dx = self
            .encoder
            .backward_batch(&enc_cache, &d_enc_top, None, &mut grads.enc);
        for (s, (sample, _, _)) in group.iter().enumerate() {
            for t in 0..steps {
                let col = t * b + s;
                for j in 0..e {
                    *grads.d_delta.get_mut(sample.delta_ids[t], j) += dx.get(j, col);
                    *grads.d_vid.get_mut(sample.vid_ids[t], j) += dx.get(e + j, col);
                }
            }
        }
        (loss, grads)
    }

    /// Forward + backward for one sample without zeroing or stepping;
    /// returns the losses. Factored out of
    /// [`LstmAutoencoder::train_step`] for mini-batching.
    fn forward_backward(&mut self, sample: &SeqSample, cluster_target: Option<&[f64]>) -> StepLoss {
        self.forward_backward_scaled(sample, cluster_target, 1.0)
    }

    /// [`LstmAutoencoder::forward_backward`] with every accumulated
    /// gradient scaled by `grad_scale` (mini-batch averaging). The
    /// returned loss is the *unscaled* per-sample loss.
    fn forward_backward_scaled(
        &mut self,
        sample: &SeqSample,
        cluster_target: Option<&[f64]>,
        grad_scale: f64,
    ) -> StepLoss {
        sample.validate(self.bits);
        let steps = sample.delta_ids.len();
        let denom = (steps * self.bits) as f64;
        let enc_inputs = self.encoder_inputs(sample);
        let (enc_top, enc_cache) = self.encoder.forward(&enc_inputs);
        let z = enc_top.last().expect("non-empty").clone();
        let dec_inputs = vec![z.clone(); steps];
        let (dec_top, dec_cache) = self.decoder.forward(&dec_inputs);

        let mut loss = 0.0;
        let mut d_dec_top = vec![vec![0.0; self.decoder.hidden_dim()]; steps];
        for t in 0..steps {
            let mut logits = self.w_out.matvec(&dec_top[t]);
            add_assign(&mut logits, &self.b_out);
            let mut dlogits = vec![0.0; self.bits];
            for j in 0..self.bits {
                let p = sigmoid(logits[j]);
                let y = sample.delta_bits[t][j];
                loss += bce(p, y);
                dlogits[j] = grad_scale * (p - y) / denom;
            }
            self.dw_out.add_outer(&dlogits, &dec_top[t]);
            add_assign(&mut self.db_out, &dlogits);
            d_dec_top[t] = self.w_out.matvec_t(&dlogits);
        }
        let d_dec_inputs = self.decoder.backward(&dec_cache, &d_dec_top, None);
        let mut dz = vec![0.0; z.len()];
        for d in &d_dec_inputs {
            add_assign(&mut dz, d);
        }
        let mut cluster = 0.0;
        if let Some(mu) = cluster_target {
            assert_eq!(mu.len(), z.len(), "centroid dimension mismatch");
            for j in 0..z.len() {
                let diff = z[j] - mu[j];
                cluster += diff * diff;
                dz[j] += grad_scale * 2.0 * self.lambda * diff;
            }
        }
        let mut d_enc_top = vec![vec![0.0; self.encoder.hidden_dim()]; steps];
        d_enc_top[steps - 1] = dz;
        let d_enc_inputs = self.encoder.backward(&enc_cache, &d_enc_top, None);
        let e = self.delta_embed.dim();
        for (t, d) in d_enc_inputs.iter().enumerate() {
            self.delta_embed.accumulate(sample.delta_ids[t], &d[..e]);
            self.vid_embed.accumulate(sample.vid_ids[t], &d[e..]);
        }
        StepLoss {
            reconstruct: loss / denom,
            cluster,
        }
    }

    fn encoder_inputs(&self, sample: &SeqSample) -> Vec<Vec<f64>> {
        sample
            .delta_ids
            .iter()
            .zip(&sample.vid_ids)
            .map(|(&d, &v)| {
                let mut x = self.delta_embed.lookup(d);
                x.extend(self.vid_embed.lookup(v));
                x
            })
            .collect()
    }

    fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.decoder.zero_grad();
        self.delta_embed.zero_grad();
        self.vid_embed.zero_grad();
        self.dw_out.zero();
        self.db_out.iter_mut().for_each(|v| *v = 0.0);
    }

    fn apply_step(&mut self, lr: f64) {
        self.encoder.step(lr);
        self.decoder.step(lr);
        self.delta_embed.step(lr);
        self.vid_embed.step(lr);
        self.adam_w
            .step(self.w_out.data_mut(), self.dw_out.data(), lr);
        self.adam_b.step(&mut self.b_out, &self.db_out, lr);
    }
}

/// Binary cross entropy with clamped probabilities.
fn bce(p: f64, y: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TrainingConfig {
        TrainingConfig {
            hidden_dim: 8,
            layers: 2,
            embedding_dim: 6,
            steps: 50,
            seq_len: 4,
            learning_rate: 0.01,
            lambda: 0.05,
            delta_vocab_cap: 16,
            seed: 1,
            patience: 0,
            min_delta: 0.0,
        }
    }

    fn sample_a() -> SeqSample {
        SeqSample {
            delta_ids: vec![1, 1, 1, 1],
            vid_ids: vec![0, 0, 0, 0],
            delta_bits: vec![vec![1.0, 0.0, 0.0, 1.0]; 4],
        }
    }

    fn sample_b() -> SeqSample {
        SeqSample {
            delta_ids: vec![2, 3, 2, 3],
            vid_ids: vec![1, 1, 1, 1],
            delta_bits: vec![vec![0.0, 1.0, 1.0, 0.0]; 4],
        }
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let initial = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        for _ in 0..300 {
            ae.train_step(&sample_a(), None, 0.01);
            ae.train_step(&sample_b(), None, 0.01);
        }
        let trained = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        assert!(
            trained < initial * 0.5,
            "loss {initial} -> {trained} did not halve"
        );
    }

    #[test]
    fn distinct_patterns_get_distinct_embeddings() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        for _ in 0..200 {
            ae.train_step(&sample_a(), None, 0.01);
            ae.train_step(&sample_b(), None, 0.01);
        }
        let za = ae.embed(&sample_a());
        let zb = ae.embed(&sample_b());
        let d: f64 = za.iter().zip(&zb).map(|(a, b)| (a - b).abs()).sum();
        assert!(d > 1e-3, "embeddings collapsed: {za:?} vs {zb:?}");
    }

    #[test]
    fn cluster_term_pulls_embedding_toward_centroid() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let mu = vec![0.0; ae.embedding_dim()];
        let before = crate::linalg::sq_dist(&ae.embed(&sample_a()), &mu);
        // Strong lambda so the pull dominates within a few steps.
        ae.lambda = 10.0;
        for _ in 0..100 {
            ae.train_step(&sample_a(), Some(&mu), 0.01);
        }
        let after = crate::linalg::sq_dist(&ae.embed(&sample_a()), &mu);
        assert!(after < before, "cluster distance {before} -> {after}");
    }

    #[test]
    fn mini_batch_training_converges() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let samples = [sample_a(), sample_b()];
        let refs: Vec<&SeqSample> = samples.iter().collect();
        let initial = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        for _ in 0..300 {
            ae.train_batch(&refs, 0.01);
        }
        let trained = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        assert!(trained < initial * 0.5, "{initial} -> {trained}");
    }

    #[test]
    #[should_panic(expected = "empty mini-batch")]
    fn empty_batch_rejected() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let _ = ae.train_batch(&[], 0.01);
    }

    #[test]
    fn batch_of_one_identical_to_train_step() {
        // Regression for the gradient-scaling bug: with the old
        // unscaled accumulation this held only by accident of B = 1,
        // but the losses and parameter updates must be *bit-identical*
        // so larger batches are exact means, not sums.
        let mut via_batch = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let mut via_step = via_batch.clone();
        for _ in 0..5 {
            let a = sample_a();
            let lb = via_batch.train_batch(&[&a], 0.01);
            let ls = via_step.train_step(&a, None, 0.01);
            assert_eq!(lb, ls, "losses diverged");
        }
        assert_eq!(via_batch.embed(&sample_a()), via_step.embed(&sample_a()));
        assert_eq!(
            via_batch.evaluate(&sample_b()),
            via_step.evaluate(&sample_b())
        );
    }

    #[test]
    fn train_batch_returns_mean_loss_of_batch() {
        // Both per-sample passes of a batch see the same (pre-update)
        // parameters, so the reported loss must equal the mean of the
        // losses train_step would report on clones.
        let ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let (a, b) = (sample_a(), sample_b());
        let la = ae.clone().train_step(&a, None, 1e-9).reconstruct;
        let lb = ae.clone().train_step(&b, None, 1e-9).reconstruct;
        let batch = ae.clone().train_batch(&[&a, &b], 1e-9);
        assert!(
            (batch.reconstruct - (la + lb) / 2.0).abs() < 1e-12,
            "{} vs mean {}",
            batch.reconstruct,
            (la + lb) / 2.0
        );
        assert_eq!(batch.cluster, 0.0);
    }

    #[test]
    fn minibatch_matches_per_sample_batch() {
        // The batched-kernel path and the per-step reference path must
        // produce the same optimizer step (up to fp reassociation).
        let mut fast = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let mut reference = fast.clone();
        let (a, b) = (sample_a(), sample_b());
        for _ in 0..10 {
            let items = [
                MiniBatchItem {
                    sample: &a,
                    weight: 1.0,
                    target: None,
                },
                MiniBatchItem {
                    sample: &b,
                    weight: 1.0,
                    target: None,
                },
            ];
            let lf = fast.train_minibatch(&items, 0.01, 1);
            let lr = reference.train_batch(&[&a, &b], 0.01);
            assert!(
                (lf.reconstruct - lr.reconstruct).abs() < 1e-9,
                "loss diverged: {} vs {}",
                lf.reconstruct,
                lr.reconstruct
            );
        }
        let zf = fast.embed(&sample_a());
        let zr = reference.embed(&sample_a());
        for (x, y) in zf.iter().zip(&zr) {
            assert!((x - y).abs() < 1e-6, "params diverged: {x} vs {y}");
        }
    }

    #[test]
    fn minibatch_with_targets_pulls_toward_centroid() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        ae.lambda = 10.0;
        let a = sample_a();
        let mu = vec![0.0; ae.embedding_dim()];
        let before = crate::linalg::sq_dist(&ae.embed(&a), &mu);
        for _ in 0..100 {
            let items = [MiniBatchItem {
                sample: &a,
                weight: 1.0,
                target: Some(&mu),
            }];
            let l = ae.train_minibatch(&items, 0.01, 1);
            assert!(l.cluster >= 0.0);
        }
        let after = crate::linalg::sq_dist(&ae.embed(&a), &mu);
        assert!(after < before, "cluster distance {before} -> {after}");
    }

    #[test]
    fn minibatch_weight_equals_duplication() {
        // weight = 2 must act like listing the sample twice (the
        // dedup-with-multiplicity contract of the training loop).
        let mut by_weight = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let mut by_dup = by_weight.clone();
        let (a, b) = (sample_a(), sample_b());
        for _ in 0..5 {
            by_weight.train_minibatch(
                &[
                    MiniBatchItem {
                        sample: &a,
                        weight: 2.0,
                        target: None,
                    },
                    MiniBatchItem {
                        sample: &b,
                        weight: 1.0,
                        target: None,
                    },
                ],
                0.01,
                1,
            );
            by_dup.train_minibatch(
                &[
                    MiniBatchItem {
                        sample: &a,
                        weight: 1.0,
                        target: None,
                    },
                    MiniBatchItem {
                        sample: &a,
                        weight: 1.0,
                        target: None,
                    },
                    MiniBatchItem {
                        sample: &b,
                        weight: 1.0,
                        target: None,
                    },
                ],
                0.01,
                1,
            );
        }
        for (x, y) in by_weight.embed(&a).iter().zip(&by_dup.embed(&a)) {
            assert!((x - y).abs() < 1e-9, "weighting diverged: {x} vs {y}");
        }
    }

    #[test]
    fn minibatch_bit_identical_across_thread_counts() {
        // The deterministic-reduction contract: same update for any
        // thread count, exactly.
        let (a, b) = (sample_a(), sample_b());
        let mut models: Vec<LstmAutoencoder> = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut m = LstmAutoencoder::new(16, 4, 4, &tiny_config());
            for _ in 0..4 {
                // Three rectangular groups: a 4-step pair and a longer
                // window, exercising the by-length grouping.
                let long = SeqSample {
                    delta_ids: vec![1, 2, 3, 1, 2, 3],
                    vid_ids: vec![2; 6],
                    delta_bits: vec![vec![1.0, 1.0, 0.0, 0.0]; 6],
                };
                let items = [
                    MiniBatchItem {
                        sample: &a,
                        weight: 1.0,
                        target: None,
                    },
                    MiniBatchItem {
                        sample: &b,
                        weight: 3.0,
                        target: None,
                    },
                    MiniBatchItem {
                        sample: &long,
                        weight: 2.0,
                        target: None,
                    },
                ];
                m.train_minibatch(&items, 0.01, threads);
            }
            models.push(m);
        }
        let z0 = models[0].embed(&a);
        for m in &models[1..] {
            assert_eq!(z0, m.embed(&a), "threaded update diverged");
        }
    }

    #[test]
    fn embed_batch_matches_embed() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        for _ in 0..20 {
            ae.train_step(&sample_a(), None, 0.01);
        }
        let (a, b) = (sample_a(), sample_b());
        let long = SeqSample {
            delta_ids: vec![3, 2, 1, 3, 2],
            vid_ids: vec![1; 5],
            delta_bits: vec![vec![0.0, 0.0, 1.0, 1.0]; 5],
        };
        let samples = [&a, &b, &long];
        for threads in [1usize, 3] {
            let zs = ae.embed_batch(&samples, threads);
            assert_eq!(zs.len(), 3);
            for (i, s) in samples.iter().enumerate() {
                let oracle = ae.embed(s);
                for (x, y) in zs[i].iter().zip(&oracle) {
                    assert!((x - y).abs() < 1e-10, "sample {i}: {x} vs {y}");
                }
            }
        }
        assert!(ae.embed_batch(&[], 1).is_empty());
    }

    #[test]
    fn loss_reporting() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let l = ae.train_step(&sample_a(), Some(&[0.0; 8]), 0.001);
        assert!(l.reconstruct > 0.0);
        assert!(l.cluster > 0.0);
        assert!(l.total(0.01) > l.reconstruct);
        let l2 = ae.train_step(&sample_a(), None, 0.001);
        assert_eq!(l2.cluster, 0.0);
    }

    #[test]
    fn deterministic_construction() {
        let a = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let b = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        assert_eq!(a.embed(&sample_a()), b.embed(&sample_a()));
    }

    #[test]
    #[should_panic(expected = "bit width mismatch")]
    fn wrong_bit_width_rejected() {
        let ae = LstmAutoencoder::new(16, 4, 8, &tiny_config());
        let _ = ae.embed(&sample_a()); // 4-bit targets, 8-bit model
    }
}
