//! The embedding-LSTM autoencoder (paper Fig. 9).
//!
//! Input: a sequence of `(Δ, VID)` pairs, where Δ is the XOR of two
//! consecutive addresses and VID the variable id. Δ and VID are
//! embedded separately, concatenated, and fed to a stacked-LSTM
//! *encoder*; the final hidden state is the sequence embedding `z`. A
//! stacked-LSTM *decoder* conditioned on `z` reconstructs the Δ bit
//! pattern of every step through a sigmoid readout.
//!
//! Loss: the paper's Eq. 3 is an L1 over reconstructed Δ bits; we use
//! the standard binary-cross-entropy surrogate for per-bit targets
//! (identical minimizer for {0,1} targets, smooth gradients). The joint
//! phase adds the paper's clustering term:
//! `L_total = L_reconstruct + λ · ||z − µ_assigned||²`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::embedding::Embedding;
use crate::linalg::{add_assign, sigmoid, Mat};
use crate::lstm::Lstm;
use crate::optim::Adam;
use crate::TrainingConfig;

/// One training sample: a window of `(Δ, VID)` pairs plus the Δ bit
/// targets to reconstruct.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqSample {
    /// Δ vocabulary ids, one per step.
    pub delta_ids: Vec<usize>,
    /// VID vocabulary ids, one per step.
    pub vid_ids: Vec<usize>,
    /// Per-step Δ bit targets (each of width `bits`, values 0.0 / 1.0).
    pub delta_bits: Vec<Vec<f64>>,
}

impl SeqSample {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or non-binary targets.
    pub fn validate(&self, bits: usize) {
        assert_eq!(
            self.delta_ids.len(),
            self.vid_ids.len(),
            "id length mismatch"
        );
        assert_eq!(
            self.delta_ids.len(),
            self.delta_bits.len(),
            "target length mismatch"
        );
        assert!(!self.delta_ids.is_empty(), "empty sample");
        for b in &self.delta_bits {
            assert_eq!(b.len(), bits, "bit width mismatch");
            assert!(
                b.iter().all(|&v| v == 0.0 || v == 1.0),
                "targets must be binary"
            );
        }
    }
}

/// Losses of one training step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepLoss {
    /// Reconstruction loss (BCE over Δ bits).
    pub reconstruct: f64,
    /// Clustering loss (`||z − µ||²`; 0 when no target given).
    pub cluster: f64,
}

impl StepLoss {
    /// The paper's `L_total = L_reconstruct + λ·L_cluster`.
    pub fn total(&self, lambda: f64) -> f64 {
        self.reconstruct + lambda * self.cluster
    }
}

/// The autoencoder model.
#[derive(Debug, Clone)]
pub struct LstmAutoencoder {
    delta_embed: Embedding,
    vid_embed: Embedding,
    encoder: Lstm,
    decoder: Lstm,
    w_out: Mat,
    b_out: Vec<f64>,
    dw_out: Mat,
    db_out: Vec<f64>,
    adam_w: Adam,
    adam_b: Adam,
    bits: usize,
    lambda: f64,
}

impl LstmAutoencoder {
    /// Builds a model for the given vocabularies and Δ bit width.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a vocabulary is empty.
    pub fn new(delta_vocab: usize, vid_vocab: usize, bits: usize, config: &TrainingConfig) -> Self {
        config.validate();
        assert!(
            delta_vocab > 0 && vid_vocab > 0,
            "vocabularies must be non-empty"
        );
        assert!(bits > 0, "bit width must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let e = config.embedding_dim;
        let h = config.hidden_dim;
        // Damp the VID embedding so two variables with identical access
        // patterns start with near-identical sequence embeddings; the Δ
        // pattern, not variable identity, should drive the clusters.
        let mut vid_embed = Embedding::new(vid_vocab, e, &mut rng);
        vid_embed.scale(0.05);
        LstmAutoencoder {
            delta_embed: Embedding::new(delta_vocab, e, &mut rng),
            vid_embed,
            encoder: Lstm::new(2 * e, h, config.layers, &mut rng),
            decoder: Lstm::new(h, h, config.layers, &mut rng),
            w_out: Mat::xavier(bits, h, &mut rng),
            b_out: vec![0.0; bits],
            dw_out: Mat::zeros(bits, h),
            db_out: vec![0.0; bits],
            adam_w: Adam::new(bits * h),
            adam_b: Adam::new(bits),
            bits,
            lambda: config.lambda,
        }
    }

    /// The embedding dimension of `z` (the LSTM hidden size).
    pub fn embedding_dim(&self) -> usize {
        self.encoder.hidden_dim()
    }

    /// Encodes a sample into its embedding `z` (no gradients).
    pub fn embed(&self, sample: &SeqSample) -> Vec<f64> {
        sample.validate(self.bits);
        let inputs = self.encoder_inputs(sample);
        let (top, _) = self.encoder.forward(&inputs);
        top.last().expect("non-empty sample").clone()
    }

    /// Reconstruction loss of a sample without updating parameters.
    pub fn evaluate(&self, sample: &SeqSample) -> f64 {
        sample.validate(self.bits);
        let inputs = self.encoder_inputs(sample);
        let (top, _) = self.encoder.forward(&inputs);
        let z = top.last().expect("non-empty").clone();
        let dec_in = vec![z; sample.delta_ids.len()];
        let (dec_top, _) = self.decoder.forward(&dec_in);
        let mut loss = 0.0;
        for (t, h) in dec_top.iter().enumerate() {
            let mut logits = self.w_out.matvec(h);
            add_assign(&mut logits, &self.b_out);
            for (j, &l) in logits.iter().enumerate() {
                loss += bce(sigmoid(l), sample.delta_bits[t][j]);
            }
        }
        loss / (dec_top.len() * self.bits) as f64
    }

    /// One SGD step on a sample. `cluster_target`, when given, adds the
    /// joint clustering term pulling `z` toward its centroid.
    ///
    /// # Panics
    ///
    /// Panics if the sample is inconsistent or the target has the wrong
    /// dimension.
    pub fn train_step(
        &mut self,
        sample: &SeqSample,
        cluster_target: Option<&[f64]>,
        lr: f64,
    ) -> StepLoss {
        self.zero_grad();
        let loss = self.forward_backward(sample, cluster_target);
        self.apply_step(lr);
        loss
    }

    /// One mini-batch step: gradients are accumulated over the batch
    /// and applied once — smoother convergence than per-sample SGD on
    /// heterogeneous window sets. Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or inconsistent samples.
    pub fn train_batch(&mut self, batch: &[&SeqSample], lr: f64) -> StepLoss {
        assert!(!batch.is_empty(), "empty mini-batch");
        // Reuse the single-sample path but defer the optimizer step by
        // scaling: run forward/backward per sample with zero lr, then
        // step once. Simplest correct formulation given per-sample
        // caches: accumulate by calling the internal passes.
        let mut total = StepLoss::default();
        self.zero_grad();
        for s in batch {
            total.reconstruct += self.forward_backward(s, None).reconstruct / batch.len() as f64;
        }
        self.apply_step(lr);
        total
    }

    /// Forward + backward for one sample without zeroing or stepping;
    /// returns the losses. Factored out of
    /// [`LstmAutoencoder::train_step`] for mini-batching.
    fn forward_backward(&mut self, sample: &SeqSample, cluster_target: Option<&[f64]>) -> StepLoss {
        sample.validate(self.bits);
        let steps = sample.delta_ids.len();
        let denom = (steps * self.bits) as f64;
        let enc_inputs = self.encoder_inputs(sample);
        let (enc_top, enc_cache) = self.encoder.forward(&enc_inputs);
        let z = enc_top.last().expect("non-empty").clone();
        let dec_inputs = vec![z.clone(); steps];
        let (dec_top, dec_cache) = self.decoder.forward(&dec_inputs);

        let mut loss = 0.0;
        let mut d_dec_top = vec![vec![0.0; self.decoder.hidden_dim()]; steps];
        for t in 0..steps {
            let mut logits = self.w_out.matvec(&dec_top[t]);
            add_assign(&mut logits, &self.b_out);
            let mut dlogits = vec![0.0; self.bits];
            for j in 0..self.bits {
                let p = sigmoid(logits[j]);
                let y = sample.delta_bits[t][j];
                loss += bce(p, y);
                dlogits[j] = (p - y) / denom;
            }
            self.dw_out.add_outer(&dlogits, &dec_top[t]);
            add_assign(&mut self.db_out, &dlogits);
            d_dec_top[t] = self.w_out.matvec_t(&dlogits);
        }
        let d_dec_inputs = self.decoder.backward(&dec_cache, &d_dec_top, None);
        let mut dz = vec![0.0; z.len()];
        for d in &d_dec_inputs {
            add_assign(&mut dz, d);
        }
        let mut cluster = 0.0;
        if let Some(mu) = cluster_target {
            assert_eq!(mu.len(), z.len(), "centroid dimension mismatch");
            for j in 0..z.len() {
                let diff = z[j] - mu[j];
                cluster += diff * diff;
                dz[j] += 2.0 * self.lambda * diff;
            }
        }
        let mut d_enc_top = vec![vec![0.0; self.encoder.hidden_dim()]; steps];
        d_enc_top[steps - 1] = dz;
        let d_enc_inputs = self.encoder.backward(&enc_cache, &d_enc_top, None);
        let e = self.delta_embed.dim();
        for (t, d) in d_enc_inputs.iter().enumerate() {
            self.delta_embed.accumulate(sample.delta_ids[t], &d[..e]);
            self.vid_embed.accumulate(sample.vid_ids[t], &d[e..]);
        }
        StepLoss {
            reconstruct: loss / denom,
            cluster,
        }
    }

    fn encoder_inputs(&self, sample: &SeqSample) -> Vec<Vec<f64>> {
        sample
            .delta_ids
            .iter()
            .zip(&sample.vid_ids)
            .map(|(&d, &v)| {
                let mut x = self.delta_embed.lookup(d);
                x.extend(self.vid_embed.lookup(v));
                x
            })
            .collect()
    }

    fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.decoder.zero_grad();
        self.delta_embed.zero_grad();
        self.vid_embed.zero_grad();
        self.dw_out.zero();
        self.db_out.iter_mut().for_each(|v| *v = 0.0);
    }

    fn apply_step(&mut self, lr: f64) {
        self.encoder.step(lr);
        self.decoder.step(lr);
        self.delta_embed.step(lr);
        self.vid_embed.step(lr);
        self.adam_w
            .step(self.w_out.data_mut(), self.dw_out.data(), lr);
        self.adam_b.step(&mut self.b_out, &self.db_out, lr);
    }
}

/// Binary cross entropy with clamped probabilities.
fn bce(p: f64, y: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TrainingConfig {
        TrainingConfig {
            hidden_dim: 8,
            layers: 2,
            embedding_dim: 6,
            steps: 50,
            seq_len: 4,
            learning_rate: 0.01,
            lambda: 0.05,
            delta_vocab_cap: 16,
            seed: 1,
        }
    }

    fn sample_a() -> SeqSample {
        SeqSample {
            delta_ids: vec![1, 1, 1, 1],
            vid_ids: vec![0, 0, 0, 0],
            delta_bits: vec![vec![1.0, 0.0, 0.0, 1.0]; 4],
        }
    }

    fn sample_b() -> SeqSample {
        SeqSample {
            delta_ids: vec![2, 3, 2, 3],
            vid_ids: vec![1, 1, 1, 1],
            delta_bits: vec![vec![0.0, 1.0, 1.0, 0.0]; 4],
        }
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let initial = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        for _ in 0..300 {
            ae.train_step(&sample_a(), None, 0.01);
            ae.train_step(&sample_b(), None, 0.01);
        }
        let trained = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        assert!(
            trained < initial * 0.5,
            "loss {initial} -> {trained} did not halve"
        );
    }

    #[test]
    fn distinct_patterns_get_distinct_embeddings() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        for _ in 0..200 {
            ae.train_step(&sample_a(), None, 0.01);
            ae.train_step(&sample_b(), None, 0.01);
        }
        let za = ae.embed(&sample_a());
        let zb = ae.embed(&sample_b());
        let d: f64 = za.iter().zip(&zb).map(|(a, b)| (a - b).abs()).sum();
        assert!(d > 1e-3, "embeddings collapsed: {za:?} vs {zb:?}");
    }

    #[test]
    fn cluster_term_pulls_embedding_toward_centroid() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let mu = vec![0.0; ae.embedding_dim()];
        let before = crate::linalg::sq_dist(&ae.embed(&sample_a()), &mu);
        // Strong lambda so the pull dominates within a few steps.
        ae.lambda = 10.0;
        for _ in 0..100 {
            ae.train_step(&sample_a(), Some(&mu), 0.01);
        }
        let after = crate::linalg::sq_dist(&ae.embed(&sample_a()), &mu);
        assert!(after < before, "cluster distance {before} -> {after}");
    }

    #[test]
    fn mini_batch_training_converges() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let samples = [sample_a(), sample_b()];
        let refs: Vec<&SeqSample> = samples.iter().collect();
        let initial = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        for _ in 0..300 {
            ae.train_batch(&refs, 0.01);
        }
        let trained = ae.evaluate(&sample_a()) + ae.evaluate(&sample_b());
        assert!(trained < initial * 0.5, "{initial} -> {trained}");
    }

    #[test]
    #[should_panic(expected = "empty mini-batch")]
    fn empty_batch_rejected() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let _ = ae.train_batch(&[], 0.01);
    }

    #[test]
    fn loss_reporting() {
        let mut ae = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let l = ae.train_step(&sample_a(), Some(&[0.0; 8]), 0.001);
        assert!(l.reconstruct > 0.0);
        assert!(l.cluster > 0.0);
        assert!(l.total(0.01) > l.reconstruct);
        let l2 = ae.train_step(&sample_a(), None, 0.001);
        assert_eq!(l2.cluster, 0.0);
    }

    #[test]
    fn deterministic_construction() {
        let a = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        let b = LstmAutoencoder::new(16, 4, 4, &tiny_config());
        assert_eq!(a.embed(&sample_a()), b.embed(&sample_a()));
    }

    #[test]
    #[should_panic(expected = "bit width mismatch")]
    fn wrong_bit_width_rejected() {
        let ae = LstmAutoencoder::new(16, 4, 8, &tiny_config());
        let _ = ae.embed(&sample_a()); // 4-bit targets, 8-bit model
    }
}
