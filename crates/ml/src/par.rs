//! Deterministic fan-out over independent work items.
//!
//! Both the pipeline's outer loops (per-configuration runs, per-workload
//! profiling — re-exported from `sdam::par`) and the trainer's
//! minibatch fan-out are embarrassingly parallel: each item is a pure
//! function of its inputs. [`par_map_indexed`] runs them on scoped
//! threads and returns results in *input order*, so callers that reduce
//! the results left-to-right are bit-identical to a serial `map`
//! regardless of scheduling.

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning the results in input order.
///
/// Work is claimed from a shared atomic counter, so uneven item costs
/// balance across workers. `threads <= 1` (or a single item) runs the
/// plain serial loop with no thread overhead.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let workers = threads.min(items.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Items move into per-index cells; results come back the same way.
    let cells: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let out: Vec<std::sync::Mutex<Option<R>>> = (0..cells.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let Some(item) = lock(&cells[i]).take() else {
                    panic!("item {i} claimed twice");
                };
                let r = f(i, item);
                *lock(&out[i]) = Some(r);
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                // Re-raise the worker's panic on the caller's thread.
                std::panic::resume_unwind(payload);
            }
        }
    });
    out.into_iter()
        .enumerate()
        .map(|(i, m)| {
            let slot = m
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(r) = slot else {
                panic!("item {i} was never processed");
            };
            r
        })
        .collect()
}

/// Locks a mutex, recovering the data from a poisoned lock (a poisoned
/// worker already aborts the map via the join above).
fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1usize, 2, 4, 9] {
            let got = par_map_indexed(threads, (0..57u64).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let want: Vec<u64> = (0..57).map(|x| x * x).collect();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_indexed(4, Vec::<u8>::new(), |_, x| x), vec![]);
        assert_eq!(par_map_indexed(4, vec![41u8], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn balances_uneven_work() {
        // More items than threads with skewed costs: all results present
        // and ordered.
        let got = par_map_indexed(3, (0..20u64).collect(), |_, x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(got, (1..=20u64).collect::<Vec<_>>());
    }
}
