//! The Adam optimizer (Kingma & Ba), per-tensor state.

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    beta1: f64,
    beta2: f64,
    eps: f64,
}

impl Adam {
    /// Creates optimizer state for a tensor of `len` parameters with the
    /// standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(len: usize) -> Self {
        Adam {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Applies one update: `param -= lr * m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `param` / `grad` lengths differ from the state.
    pub fn step(&mut self, param: &mut [f64], grad: &[f64], lr: f64) {
        assert_eq!(param.len(), self.m.len(), "parameter length mismatch");
        assert_eq!(grad.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            param[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2; df = 2(x - 3).
        let mut x = vec![0.0];
        let mut adam = Adam::new(1);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g, 0.01);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "converged to {}", x[0]);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // Bias correction makes the first Adam step ≈ lr * sign(grad).
        let mut x = vec![0.0];
        let mut adam = Adam::new(1);
        adam.step(&mut x, &[123.0], 0.001);
        assert!((x[0] + 0.001).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn checks_lengths() {
        let mut adam = Adam::new(2);
        adam.step(&mut [0.0], &[1.0], 0.1);
    }
}
