//! Minimal dense linear algebra for the LSTM autoencoder.
//!
//! Everything is `f64`. Two tiers of primitives coexist:
//!
//! * the original matrix–vector products ([`Mat::matvec`],
//!   [`Mat::matvec_t`], [`Mat::add_outer`]) — batch size 1, one
//!   sequence step at a time. These stay as the auditable *reference
//!   oracle* for the batched path (proptest equivalence in
//!   `tests/prop_ml.rs`);
//! * blocked matrix–matrix products ([`Mat::matmul`],
//!   [`Mat::matmul_tn`], [`Mat::matmul_nt`]) used by the batched LSTM
//!   kernels, which process all timesteps of a minibatch per call.
//!
//! The matmul kernels fix their accumulation order (`k` ascending per
//! output element) so results are deterministic across runs and
//! platforms; column tiling only re-orders *independent* outputs, never
//! the summation within one element.

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Mat { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization with the given RNG.
    pub fn xavier<R: rand::Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutably (for optimizers).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `x = Aᵀ·y` (the backward pass of [`Mat::matvec`]).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "matvec_t dimension mismatch");
        let mut x = vec![0.0; self.cols];
        for (row, &yv) in self.data.chunks_exact(self.cols).zip(y) {
            for (xc, a) in x.iter_mut().zip(row) {
                *xc += a * yv;
            }
        }
        x
    }

    /// Accumulates the outer product `dA += dy ⊗ x` (weight gradient of
    /// a matvec).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, dy: &[f64], x: &[f64]) {
        assert_eq!(dy.len(), self.rows, "outer rows mismatch");
        assert_eq!(x.len(), self.cols, "outer cols mismatch");
        for (row, &dyv) in self.data.chunks_exact_mut(self.cols).zip(dy) {
            for (a, xv) in row.iter_mut().zip(x) {
                *a += dyv * xv;
            }
        }
    }

    /// Fills with zeros (gradient reset).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f64) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// Element-wise accumulation: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_mat(&mut self, other: &Mat) {
        assert_eq!(self.rows, other.rows, "add_mat rows mismatch");
        assert_eq!(self.cols, other.cols, "add_mat cols mismatch");
        add_assign(&mut self.data, &other.data);
    }

    /// `C = self · B` — blocked matrix–matrix product.
    ///
    /// Loop order is `i`–`k`–`j` inside a tile of output columns: per
    /// output element the `k` accumulation runs strictly ascending, so
    /// column `j` of the result is bit-identical to
    /// `self.matvec(B[:, j])`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.rows`.
    pub fn matmul(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let (m, kk, n) = (self.rows, self.cols, b.cols);
        let mut c = Mat::zeros(m, n);
        // Tile output columns so a B panel stays cache-resident while
        // every row of A streams over it.
        const TILE: usize = 64;
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + TILE).min(n);
            for i in 0..m {
                let a_row = &self.data[i * kk..(i + 1) * kk];
                let c_row = &mut c.data[i * n..(i + 1) * n];
                for (k, &a) in a_row.iter().enumerate() {
                    let b_row = &b.data[k * n..(k + 1) * n];
                    for j in j0..j1 {
                        c_row[j] += a * b_row[j];
                    }
                }
            }
            j0 = j1;
        }
        c
    }

    /// `C = selfᵀ · B` (the input-gradient counterpart of
    /// [`Mat::matmul`]; `self` is `k×m`, `b` is `k×n`, result `m×n`).
    ///
    /// Accumulates over `k` in ascending order, matching
    /// [`Mat::matvec_t`] column by column.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != b.rows`.
    pub fn matmul_tn(&self, b: &Mat) -> Mat {
        assert_eq!(self.rows, b.rows, "matmul_tn dimension mismatch");
        let (kk, m, n) = (self.rows, self.cols, b.cols);
        let mut c = Mat::zeros(m, n);
        for k in 0..kk {
            let a_row = &self.data[k * m..(k + 1) * m];
            let b_row = &b.data[k * n..(k + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                let c_row = &mut c.data[i * n..(i + 1) * n];
                for j in 0..n {
                    c_row[j] += a * b_row[j];
                }
            }
        }
        c
    }

    /// `C = self · Bᵀ` (the weight-gradient counterpart of
    /// [`Mat::matmul`]; `self` is `m×k`, `b` is `n×k`, result `m×n`).
    ///
    /// Each output element is a dot product of two contiguous rows with
    /// `k` ascending — the batched form of [`Mat::add_outer`] summed
    /// over columns.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.cols`.
    pub fn matmul_nt(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.cols, "matmul_nt dimension mismatch");
        let (m, kk, n) = (self.rows, self.cols, b.rows);
        let mut c = Mat::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * kk..(i + 1) * kk];
            let c_row = &mut c.data[i * n..(i + 1) * n];
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = &b.data[j * kk..(j + 1) * kk];
                *cv = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            }
        }
        c
    }

    /// Copies columns `[lo, hi)` into a new `rows × (hi-lo)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn col_block(&self, lo: usize, hi: usize) -> Mat {
        assert!(lo < hi && hi <= self.cols, "column range out of bounds");
        let w = hi - lo;
        let mut out = Mat::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + lo..r * self.cols + hi]);
        }
        out
    }

    /// Writes `src` into columns `[lo, lo + src.cols)` of `self`.
    ///
    /// # Panics
    ///
    /// Panics on row mismatch or out-of-bounds columns.
    pub fn set_col_block(&mut self, lo: usize, src: &Mat) {
        assert_eq!(self.rows, src.rows, "set_col_block rows mismatch");
        assert!(lo + src.cols <= self.cols, "column range out of bounds");
        for r in 0..self.rows {
            self.data[r * self.cols + lo..r * self.cols + lo + src.cols]
                .copy_from_slice(&src.data[r * src.cols..(r + 1) * src.cols]);
        }
    }

    /// Adds `src` into columns `[lo, lo + src.cols)` of `self`.
    ///
    /// # Panics
    ///
    /// Panics on row mismatch or out-of-bounds columns.
    pub fn add_col_block(&mut self, lo: usize, src: &Mat) {
        assert_eq!(self.rows, src.rows, "add_col_block rows mismatch");
        assert!(lo + src.cols <= self.cols, "column range out of bounds");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + lo..r * self.cols + lo + src.cols];
            add_assign(dst, &src.data[r * src.cols..(r + 1) * src.cols]);
        }
    }

    /// Adds `v[r]` to every element of row `r` (bias broadcast over
    /// columns).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn add_row_broadcast(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "broadcast length mismatch");
        for (row, &b) in self.data.chunks_exact_mut(self.cols).zip(v) {
            for x in row {
                *x += b;
            }
        }
    }

    /// Per-row sums, accumulated left to right (the bias gradient of a
    /// column-batched layer).
    pub fn row_sums(&self) -> Vec<f64> {
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Copies column `j` into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_to_vec(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column out of bounds");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + j])
            .collect()
    }

    /// Writes vector `v` into column `j`.
    ///
    /// # Panics
    ///
    /// Panics on bounds or length mismatch.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.cols, "column out of bounds");
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for (r, &x) in v.iter().enumerate() {
            self.data[r * self.cols + j] = x;
        }
    }
}

/// The logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Element-wise vector addition: `a += b`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_transpose_agree() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut g = Mat::zeros(2, 2);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        g.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(g.data(), &[4.0, 5.0, 6.0, 8.0]);
        let mut z = g.clone();
        z.zero();
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_transpose_identity_property() {
        // <A x, y> == <x, A^T y> for random-ish values.
        let a = Mat::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
        let x = [1.0, -2.0];
        let y = [0.5, 1.0, -1.0];
        let ax = a.matvec(&x);
        let aty = a.matvec_t(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(p, q)| p * q).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn xavier_within_bound_and_seeded() {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        let a = Mat::xavier(4, 4, &mut r1);
        let b = Mat::xavier(4, 4, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f64).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn helpers() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &[0.5, 0.5]);
        assert_eq!(a, vec![1.5, 2.5]);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        let a = Mat::zeros(2, 2);
        let _ = a.matvec(&[1.0]);
    }

    fn seeded(rows: usize, cols: usize, seed: u64) -> Mat {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Mat::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn matmul_columns_bit_identical_to_matvec() {
        // The batched kernel's contract: column j of A·B equals the
        // per-column oracle A·b_j exactly, including past the 64-column
        // tile boundary.
        let a = seeded(7, 13, 21);
        let b = seeded(13, 130, 22);
        let c = a.matmul(&b);
        for j in 0..b.cols() {
            let oracle = a.matvec(&b.col_to_vec(j));
            assert_eq!(c.col_to_vec(j), oracle, "column {j} diverged");
        }
    }

    #[test]
    fn matmul_tn_columns_bit_identical_to_matvec_t() {
        let a = seeded(9, 5, 23); // k×m
        let b = seeded(9, 11, 24); // k×n
        let c = a.matmul_tn(&b);
        for j in 0..b.cols() {
            let oracle = a.matvec_t(&b.col_to_vec(j));
            assert_eq!(c.col_to_vec(j), oracle, "column {j} diverged");
        }
    }

    #[test]
    fn matmul_nt_matches_summed_outer_products() {
        // A·Bᵀ == Σ_k outer(A[:,k], B[:,k]) — the batched weight
        // gradient vs the per-step accumulation oracle.
        let a = seeded(4, 6, 25);
        let b = seeded(3, 6, 26);
        let c = a.matmul_nt(&b);
        let mut oracle = Mat::zeros(4, 3);
        for k in 0..6 {
            oracle.add_outer(&a.col_to_vec(k), &b.col_to_vec(k));
        }
        for r in 0..4 {
            for cix in 0..3 {
                assert!(
                    (c.get(r, cix) - oracle.get(r, cix)).abs() < 1e-12,
                    "({r},{cix}): {} vs {}",
                    c.get(r, cix),
                    oracle.get(r, cix)
                );
            }
        }
    }

    #[test]
    fn column_block_round_trips() {
        let a = seeded(5, 8, 27);
        let blk = a.col_block(2, 6);
        assert_eq!(blk.rows(), 5);
        assert_eq!(blk.cols(), 4);
        let mut b = Mat::zeros(5, 8);
        b.set_col_block(2, &blk);
        for r in 0..5 {
            for c in 2..6 {
                assert_eq!(b.get(r, c), a.get(r, c));
            }
        }
        let mut c2 = b.clone();
        c2.add_col_block(2, &blk);
        assert_eq!(c2.get(0, 2), 2.0 * a.get(0, 2));
    }

    #[test]
    fn broadcast_row_sums_and_scale() {
        let mut a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(a.data(), &[11.0, 12.0, 13.0, 24.0, 25.0, 26.0]);
        assert_eq!(a.row_sums(), vec![36.0, 75.0]);
        a.scale(0.5);
        assert_eq!(a.get(0, 0), 5.5);
        let mut b = Mat::zeros(2, 3);
        b.add_mat(&a);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn set_col_and_col_to_vec_round_trip() {
        let mut a = Mat::zeros(3, 2);
        a.set_col(1, &[7.0, 8.0, 9.0]);
        assert_eq!(a.col_to_vec(1), vec![7.0, 8.0, 9.0]);
        assert_eq!(a.col_to_vec(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_checks_dims() {
        let _ = Mat::zeros(2, 3).matmul(&Mat::zeros(2, 2));
    }
}
