//! Minimal dense linear algebra for the LSTM autoencoder.
//!
//! Everything is `f64`, batch size 1 (one sequence at a time), so the
//! primitives are a row-major matrix type, matrix–vector products, and
//! the handful of element-wise operations the gates need.

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Mat { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization with the given RNG.
    pub fn xavier<R: rand::Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutably (for optimizers).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `x = Aᵀ·y` (the backward pass of [`Mat::matvec`]).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "matvec_t dimension mismatch");
        let mut x = vec![0.0; self.cols];
        for (row, &yv) in self.data.chunks_exact(self.cols).zip(y) {
            for (xc, a) in x.iter_mut().zip(row) {
                *xc += a * yv;
            }
        }
        x
    }

    /// Accumulates the outer product `dA += dy ⊗ x` (weight gradient of
    /// a matvec).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, dy: &[f64], x: &[f64]) {
        assert_eq!(dy.len(), self.rows, "outer rows mismatch");
        assert_eq!(x.len(), self.cols, "outer cols mismatch");
        for (row, &dyv) in self.data.chunks_exact_mut(self.cols).zip(dy) {
            for (a, xv) in row.iter_mut().zip(x) {
                *a += dyv * xv;
            }
        }
    }

    /// Fills with zeros (gradient reset).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// The logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Element-wise vector addition: `a += b`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_transpose_agree() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut g = Mat::zeros(2, 2);
        g.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        g.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(g.data(), &[4.0, 5.0, 6.0, 8.0]);
        let mut z = g.clone();
        z.zero();
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_transpose_identity_property() {
        // <A x, y> == <x, A^T y> for random-ish values.
        let a = Mat::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
        let x = [1.0, -2.0];
        let y = [0.5, 1.0, -1.0];
        let ax = a.matvec(&x);
        let aty = a.matvec_t(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(p, q)| p * q).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn xavier_within_bound_and_seeded() {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        let a = Mat::xavier(4, 4, &mut r1);
        let b = Mat::xavier(4, 4, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f64).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn helpers() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &[0.5, 0.5]);
        assert_eq!(a, vec![1.5, 2.5]);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        let a = Mat::zeros(2, 2);
        let _ = a.matvec(&[1.0]);
    }
}
