//! Learned embeddings for categorical inputs.
//!
//! The paper's model (Fig. 9) embeds the address delta Δ and the
//! variable id VID separately and concatenates the embeddings before the
//! LSTM. Gradients flow only to the rows that were looked up.

use rand::Rng;

use crate::linalg::Mat;
use crate::optim::Adam;

/// An embedding table with gradient accumulation and Adam state.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Mat,
    grad: Mat,
    adam: Adam,
}

impl Embedding {
    /// Creates a `vocab × dim` embedding with small random init.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        let table = Mat::xavier(vocab, dim, rng);
        Embedding {
            grad: Mat::zeros(vocab, dim),
            adam: Adam::new(vocab * dim),
            table,
        }
    }

    /// Vocabulary size.
    #[inline]
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Scales all embeddings by `factor`. Used to damp auxiliary inputs
    /// (the VID embedding) at initialization so the primary signal (Δ)
    /// dominates early training.
    pub fn scale(&mut self, factor: f64) {
        for v in self.table.data_mut() {
            *v *= factor;
        }
    }

    /// Looks up the embedding of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of vocabulary.
    pub fn lookup(&self, id: usize) -> Vec<f64> {
        assert!(id < self.vocab(), "id {id} out of vocabulary");
        (0..self.dim()).map(|c| self.table.get(id, c)).collect()
    }

    /// Accumulates gradient for the row of `id`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn accumulate(&mut self, id: usize, grad: &[f64]) {
        assert!(id < self.vocab(), "id {id} out of vocabulary");
        assert_eq!(grad.len(), self.dim(), "gradient dimension mismatch");
        for (c, g) in grad.iter().enumerate() {
            *self.grad.get_mut(id, c) += g;
        }
    }

    /// Accumulates a dense `vocab × dim` gradient matrix (the reduced
    /// form produced by batched backward passes).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the table.
    pub fn accumulate_dense(&mut self, g: &Mat) {
        self.grad.add_mat(g);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad.zero();
    }

    /// Adam step.
    pub fn step(&mut self, lr: f64) {
        self.adam.step(self.table.data_mut(), self.grad.data(), lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_matches_table() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = Embedding::new(4, 3, &mut rng);
        let v = e.lookup(2);
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], e.lookup(2)[1]);
    }

    #[test]
    fn gradient_only_touches_looked_up_rows() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut e = Embedding::new(3, 2, &mut rng);
        let before0 = e.lookup(0);
        let before1 = e.lookup(1);
        e.accumulate(1, &[1.0, -1.0]);
        e.step(0.1);
        assert_eq!(e.lookup(0), before0, "untouched row moved");
        assert_ne!(e.lookup(1), before1, "updated row did not move");
    }

    #[test]
    fn training_moves_embedding_toward_target() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut e = Embedding::new(2, 2, &mut rng);
        // Minimize ||emb(0) - [1,2]||^2 / 2.
        for _ in 0..2000 {
            let v = e.lookup(0);
            let g = vec![v[0] - 1.0, v[1] - 2.0];
            e.zero_grad();
            e.accumulate(0, &g);
            e.step(0.01);
        }
        let v = e.lookup(0);
        assert!(
            (v[0] - 1.0).abs() < 0.01 && (v[1] - 2.0).abs() < 0.01,
            "{v:?}"
        );
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let e = Embedding::new(2, 2, &mut rng);
        let _ = e.lookup(5);
    }
}
