//! K-Means (Lloyd's algorithm) with k-means++ initialization.
//!
//! This is the paper's Eq. 2: minimize
//! `Σ_i Σ_{x ∈ S_i} ||x − µ_i||²` over `k` clusters. It runs both on
//! raw bit-flip-rate vectors (the "ML" configuration) and on learned
//! LSTM embeddings (the "DL" configuration).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linalg::sq_dist;

/// K-Means parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the loss improves by less than this (absolute).
    pub tolerance: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iters: 100,
            tolerance: 1e-9,
            seed: 0x5da0,
        }
    }
}

/// The result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids (`µ_i` of the paper).
    pub centroids: Vec<Vec<f64>>,
    /// Final clustering loss (Eq. 2).
    pub loss: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl Clustering {
    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }
}

/// Runs K-Means on `points`.
///
/// When `points.len() <= k`, every point gets its own cluster (loss 0) —
/// the "each major variable can have its own address mapping" regime
/// of the paper's 32-cluster configuration.
///
/// # Panics
///
/// Panics if `points` is empty, `k` is zero, or dimensions differ.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Clustering {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(config.k > 0, "k must be positive");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "points must share a dimension"
    );
    let k = config.k.min(points.len());

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = kmeans_pp_init(points, k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let mut loss = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut new_loss = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, d) = nearest(p, &centroids);
            assignments[i] = best;
            new_loss += d;
        }
        // Update step.
        update_centroids(points, &assignments, &mut centroids);
        if loss - new_loss < config.tolerance {
            loss = new_loss;
            break;
        }
        loss = new_loss;
    }

    Clustering {
        assignments,
        centroids,
        loss,
        iterations,
    }
}

/// The mean silhouette coefficient of a clustering in `[-1, 1]`:
/// per point, `(b - a) / max(a, b)` where `a` is the mean distance to
/// the point's own cluster and `b` the mean distance to the nearest
/// other cluster. Values near 1 mean tight, well-separated clusters;
/// near 0, overlapping ones.
///
/// Returns `None` when every point sits alone or only one cluster is
/// non-empty (silhouette is undefined there).
///
/// # Panics
///
/// Panics if `assignments.len() != points.len()`.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Option<f64> {
    assert_eq!(points.len(), assignments.len(), "length mismatch");
    let k = assignments.iter().copied().max()? + 1;
    let clusters: Vec<Vec<usize>> = (0..k)
        .map(|c| (0..points.len()).filter(|&i| assignments[i] == c).collect())
        .collect();
    if clusters.iter().filter(|c| !c.is_empty()).count() < 2 {
        return None;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..points.len() {
        let own = &clusters[assignments[i]];
        if own.len() < 2 {
            continue; // silhouette of a singleton is defined as 0; skip
        }
        let mean_to = |members: &[usize]| -> f64 {
            let sum: f64 = members
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| sq_dist(&points[i], &points[j]).sqrt())
                .sum();
            sum / members.iter().filter(|&&j| j != i).count().max(1) as f64
        };
        let a = mean_to(own);
        let b = clusters
            .iter()
            .enumerate()
            .filter(|(c, m)| *c != assignments[i] && !m.is_empty())
            .map(|(_, m)| mean_to(m))
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b).max(f64::EPSILON);
            counted += 1;
        }
    }
    (counted > 0).then(|| total / counted as f64)
}

/// One Lloyd update step: each non-empty cluster's centroid moves to
/// the mean of its members; each *empty* cluster is re-seeded on the
/// farthest point from its current centroid, with points already used
/// as re-seeds this iteration excluded so two empty clusters never
/// collapse onto the same point (which would leave them duplicated —
/// and one of them empty — forever after).
fn update_centroids(points: &[Vec<f64>], assignments: &[usize], centroids: &mut [Vec<f64>]) {
    let dim = points[0].len();
    let k = centroids.len();
    let mut sums = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (p, &a) in points.iter().zip(assignments) {
        counts[a] += 1;
        for (s, v) in sums[a].iter_mut().zip(p) {
            *s += v;
        }
    }
    let mut reseeded: Vec<usize> = Vec::new();
    for c in 0..k {
        if counts[c] == 0 {
            // At most k-1 clusters can be empty (every point is
            // assigned somewhere), so an unused point always exists.
            let far = (0..points.len())
                .filter(|i| !reseeded.contains(i))
                .max_by(|&a, &b| {
                    sq_dist(&points[a], &centroids[assignments[a]])
                        .partial_cmp(&sq_dist(&points[b], &centroids[assignments[b]]))
                        .expect("finite distances")
                })
                .expect("non-empty points");
            centroids[c] = points[far].clone();
            reseeded.push(far);
        } else {
            for (j, s) in sums[c].iter().enumerate() {
                centroids[c][j] = s / counts[c] as f64;
            }
        }
    }
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// with probability proportional to squared distance from the nearest
/// chosen one.
fn kmeans_pp_init<R: Rng>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.push(points[next].clone());
    }
    centroids
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                pts.push(vec![
                    cx + rng.gen_range(-spread..spread),
                    cy + rng.gen_range(-spread..spread),
                ]);
            }
        }
        pts
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let pts = blobs(&[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)], 20, 0.5, 7);
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        // Each blob maps to exactly one cluster.
        for blob in 0..3 {
            let first = r.assignments[blob * 20];
            for i in 0..20 {
                assert_eq!(r.assignments[blob * 20 + i], first, "blob {blob} split");
            }
        }
        // Distinct blobs get distinct clusters.
        assert_ne!(r.assignments[0], r.assignments[20]);
        assert_ne!(r.assignments[20], r.assignments[40]);
    }

    #[test]
    fn loss_non_increasing_across_iterations() {
        // Run with increasing max_iters; the final loss must not grow.
        let pts = blobs(&[(0.0, 0.0), (3.0, 3.0)], 30, 2.0, 3);
        let mut prev = f64::INFINITY;
        for iters in [1, 2, 4, 8, 32] {
            let r = kmeans(
                &pts,
                &KMeansConfig {
                    k: 2,
                    max_iters: iters,
                    tolerance: 0.0,
                    seed: 1,
                },
            );
            assert!(r.loss <= prev + 1e-9, "loss grew at {iters} iters");
            prev = r.loss;
        }
    }

    #[test]
    fn k_at_least_points_gives_zero_loss() {
        let pts = blobs(&[(0.0, 0.0)], 5, 1.0, 9);
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert!(r.loss < 1e-12);
        let distinct: std::collections::HashSet<usize> = r.assignments.iter().copied().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs(&[(0.0, 0.0), (5.0, 5.0)], 10, 1.0, 11);
        let cfg = KMeansConfig {
            k: 2,
            seed: 99,
            ..Default::default()
        };
        assert_eq!(kmeans(&pts, &cfg), kmeans(&pts, &cfg));
    }

    #[test]
    fn members_returns_cluster_contents() {
        let pts = vec![vec![0.0], vec![0.1], vec![9.0]];
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let c_of_far = r.assignments[2];
        assert_eq!(r.members(c_of_far), vec![2]);
    }

    #[test]
    fn silhouette_ranks_good_clusterings_higher() {
        let pts = blobs(&[(0.0, 0.0), (10.0, 10.0)], 15, 0.5, 5);
        let good = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let s_good = silhouette(&pts, &good.assignments).unwrap();
        // A deliberately bad split: alternate assignment.
        let bad: Vec<usize> = (0..pts.len()).map(|i| i % 2).collect();
        let s_bad = silhouette(&pts, &bad).unwrap();
        assert!(s_good > 0.7, "tight blobs should score high: {s_good}");
        assert!(s_good > s_bad + 0.3, "{s_good} vs {s_bad}");
    }

    #[test]
    fn silhouette_undefined_for_single_cluster() {
        let pts = blobs(&[(0.0, 0.0)], 10, 1.0, 2);
        let one = vec![0usize; 10];
        assert_eq!(silhouette(&pts, &one), None);
        assert_eq!(silhouette(&[], &[]), None);
    }

    #[test]
    fn empty_clusters_reseed_on_distinct_points() {
        // All four points sit in cluster 0; clusters 1 and 2 are empty
        // and must re-seed on two *different* points (the old code gave
        // both the same farthest point, leaving duplicate centroids).
        let points = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let assignments = vec![0usize, 0, 0, 0];
        let mut centroids = vec![vec![0.0], vec![100.0], vec![200.0]];
        update_centroids(&points, &assignments, &mut centroids);
        // Cluster 0 moves to the member mean (3.25); the empties grab
        // the farthest point (10.0) and then the farthest *unused* one
        // (0.0) — not 10.0 twice.
        assert_eq!(centroids[0], vec![3.25]);
        assert_eq!(centroids[1], vec![10.0]);
        assert_eq!(centroids[2], vec![0.0]);
        assert_ne!(centroids[1], centroids[2], "duplicate reseed");
    }

    #[test]
    fn identical_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 8];
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert!(r.loss < 1e-12);
        assert_eq!(r.assignments.len(), 8);
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_input_panics() {
        let _ = kmeans(&[], &KMeansConfig::default());
    }
}
