//! Training hyper-parameters (the paper's Table 2).

/// An invalid [`TrainingConfig`] (which hyper-parameter constraint was
/// violated). `sdam` (core) folds this into its `ConfigError::Training`
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingError {
    /// The violated constraint.
    pub what: &'static str,
}

impl std::fmt::Display for TrainingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid training config: {}", self.what)
    }
}

impl std::error::Error for TrainingError {}

/// Hyper-parameters for the embedding-LSTM autoencoder.
///
/// [`TrainingConfig::paper`] reproduces Table 2 exactly;
/// [`TrainingConfig::laptop`] is the downscaled preset used by the test
/// suite and the figure-regeneration benches (the paper itself profiled
/// offline on an i7 workstation for up to 29 minutes per application —
/// we keep runs in seconds and record the scaling in EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// LSTM hidden size (Table 2: 256).
    pub hidden_dim: usize,
    /// Number of stacked LSTM layers (Table 2: 2).
    pub layers: usize,
    /// Embedding size for Δ and VID (Table 2: 256).
    pub embedding_dim: usize,
    /// Training steps (Table 2: 500 k).
    pub steps: usize,
    /// Sequence length of (Δ, VID) windows (Table 2: 32).
    pub seq_len: usize,
    /// Adam learning rate (Table 2: 0.001).
    pub learning_rate: f64,
    /// Joint-loss weight λ on the clustering term (Table 2: 0.01).
    pub lambda: f64,
    /// Cap on the Δ vocabulary (distinct deltas beyond this share the
    /// unknown slot).
    pub delta_vocab_cap: usize,
    /// RNG seed for initialization and sampling.
    pub seed: u64,
    /// Early-stopping patience, in optimizer steps: training stops once
    /// the joint loss has gone `patience` consecutive steps without
    /// improving on its best value by at least
    /// [`TrainingConfig::min_delta`]. `0` disables early stopping (the
    /// paper's fixed-step schedule; `steps` always remains the hard
    /// cap).
    pub patience: usize,
    /// Minimum joint-loss improvement that counts as progress for the
    /// patience rule.
    pub min_delta: f64,
}

impl TrainingConfig {
    /// The paper's Table 2 configuration.
    pub fn paper() -> Self {
        TrainingConfig {
            hidden_dim: 256,
            layers: 2,
            embedding_dim: 256,
            steps: 500_000,
            seq_len: 32,
            learning_rate: 0.001,
            lambda: 0.01,
            delta_vocab_cap: 4096,
            seed: 0x5da1,
            patience: 0,
            min_delta: 0.0,
        }
    }

    /// A laptop-scale configuration: same architecture family, small
    /// dimensions, few steps. Keeps unit tests and benches fast while
    /// exercising every code path.
    ///
    /// The dimensions and the patience rule were tuned together on the
    /// bench workloads: this is the smallest preset whose fast
    /// (deduplicated, early-stopped) training loop still selects the
    /// same cluster partition as the reference loop. See
    /// BENCH_ml.json for the measured selection latency.
    pub fn laptop() -> Self {
        TrainingConfig {
            hidden_dim: 12,
            layers: 2,
            embedding_dim: 8,
            steps: 64,
            seq_len: 8,
            learning_rate: 0.005,
            lambda: 0.01,
            delta_vocab_cap: 256,
            seed: 0x5da1,
            patience: 3,
            min_delta: 2e-3,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the step count is zero, or λ is
    /// negative.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`TrainingConfig::validate`].
    ///
    /// # Errors
    ///
    /// [`TrainingError`] naming the violated constraint.
    pub fn try_validate(&self) -> Result<(), TrainingError> {
        let bad = |what| Err(TrainingError { what });
        if self.hidden_dim == 0 {
            return bad("hidden_dim must be positive");
        }
        if self.layers == 0 {
            return bad("layers must be positive");
        }
        if self.embedding_dim == 0 {
            return bad("embedding_dim must be positive");
        }
        if self.steps == 0 {
            return bad("steps must be positive");
        }
        if self.seq_len < 2 {
            return bad("sequences need at least two elements");
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return bad("learning rate must be positive");
        }
        if self.lambda < 0.0 || self.lambda.is_nan() {
            return bad("lambda must be non-negative");
        }
        if self.delta_vocab_cap <= 1 {
            return bad("delta vocabulary too small");
        }
        if self.min_delta < 0.0 || self.min_delta.is_nan() {
            return bad("min_delta must be non-negative");
        }
        Ok(())
    }
}

impl Default for TrainingConfig {
    /// Defaults to [`TrainingConfig::laptop`] — the configuration a
    /// library user can actually run interactively.
    fn default() -> Self {
        TrainingConfig::laptop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table2() {
        let c = TrainingConfig::paper();
        assert_eq!(c.hidden_dim, 256);
        assert_eq!(c.layers, 2);
        assert_eq!(c.embedding_dim, 256);
        assert_eq!(c.steps, 500_000);
        assert_eq!(c.seq_len, 32);
        assert_eq!(c.learning_rate, 0.001);
        assert_eq!(c.lambda, 0.01);
        c.validate();
    }

    #[test]
    fn laptop_is_valid_and_small() {
        let c = TrainingConfig::laptop();
        c.validate();
        assert!(c.steps < 10_000);
        assert!(c.hidden_dim <= 64);
        assert!(c.patience > 0, "laptop preset should early-stop");
    }

    #[test]
    fn paper_preset_disables_early_stopping() {
        // Table 2 prescribes a fixed 500k-step schedule; the patience
        // rule must not cut it short.
        let c = TrainingConfig::paper();
        assert_eq!(c.patience, 0);
        assert_eq!(c.min_delta, 0.0);
    }

    #[test]
    fn negative_min_delta_rejected() {
        let bad = TrainingConfig {
            min_delta: -0.5,
            ..TrainingConfig::laptop()
        };
        assert_eq!(
            bad.try_validate().unwrap_err().what,
            "min_delta must be non-negative"
        );
    }

    #[test]
    fn try_validate_names_the_constraint() {
        let bad = TrainingConfig {
            steps: 0,
            ..TrainingConfig::laptop()
        };
        let err = bad.try_validate().unwrap_err();
        assert_eq!(err.what, "steps must be positive");
        assert!(err.to_string().contains("steps"));
        assert!(TrainingConfig::laptop().try_validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "hidden_dim")]
    fn zero_hidden_rejected() {
        TrainingConfig {
            hidden_dim: 0,
            ..TrainingConfig::laptop()
        }
        .validate();
    }
}
