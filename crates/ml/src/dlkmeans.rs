//! DL-assisted K-Means: the paper's full §6.2 pipeline.
//!
//! Per-variable address traces become `(Δ, VID)` sequences; the
//! [`LstmAutoencoder`] learns a clustering-friendly embedding; K-Means
//! runs on the embeddings; training continues with the joint loss; the
//! final clusters assign one address mapping per cluster.
//!
//! Two training loops implement the four phases:
//!
//! * [`cluster_variables_dl`] (and its explicit-thread-count twin
//!   [`cluster_variables_dl_threaded`]) — the production path.
//!   Duplicate windows are collapsed to one weighted sample each, both
//!   training phases run weighted mini-batches through the batched
//!   LSTM kernels, a deterministic patience rule stops each phase once
//!   the joint loss plateaus, and per-variable embeddings are computed
//!   batched (and reused verbatim for the final clustering when the
//!   joint phase executed no optimizer step).
//! * [`cluster_variables_dl_reference`] — the original per-step loop
//!   (uniform window sampling, fixed step schedule, per-sample
//!   kernels), preserved as the quality oracle: the bench suite
//!   asserts both paths select the same cluster partition.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::autoencoder::{LstmAutoencoder, MiniBatchItem, SeqSample};
use crate::kmeans::{kmeans, Clustering, KMeansConfig};
use crate::TrainingConfig;

/// XOR deltas between consecutive addresses (the paper's Δ).
///
/// An input of fewer than two addresses yields an empty delta trace.
pub fn deltas(addrs: &[u64]) -> Vec<u64> {
    addrs.windows(2).map(|w| w[0] ^ w[1]).collect()
}

/// A capped vocabulary over Δ values. Id 0 is the unknown/overflow slot.
#[derive(Debug, Clone, Default)]
pub struct DeltaVocab {
    map: HashMap<u64, usize>,
    cap: usize,
}

impl DeltaVocab {
    /// Builds a vocabulary from delta streams, keeping the first
    /// `cap - 1` distinct values (slot 0 is reserved for the rest).
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    pub fn build<'a, I>(streams: I, cap: usize) -> Self
    where
        I: IntoIterator<Item = &'a [u64]>,
    {
        assert!(
            cap >= 2,
            "vocabulary must have room beyond the unknown slot"
        );
        let mut map = HashMap::new();
        // Once the vocabulary is full no further stream can add
        // anything — short-circuit across streams, not just within one.
        'streams: for s in streams {
            for &d in s {
                if map.len() + 1 >= cap {
                    break 'streams;
                }
                let next = map.len() + 1;
                map.entry(d).or_insert(next);
            }
        }
        DeltaVocab { map, cap }
    }

    /// Vocabulary size including the unknown slot.
    pub fn len(&self) -> usize {
        self.map.len() + 1
    }

    /// True when only the unknown slot exists.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks a delta up (0 for out-of-vocabulary).
    pub fn id_of(&self, delta: u64) -> usize {
        self.map.get(&delta).copied().unwrap_or(0)
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

/// The result of the DL-assisted clustering.
#[derive(Debug, Clone)]
pub struct DlClustering {
    /// Cluster index per input variable (parallel to the input order).
    pub assignments: Vec<usize>,
    /// Final per-variable embeddings.
    pub embeddings: Vec<Vec<f64>>,
    /// The final K-Means state on the embeddings.
    pub clustering: Clustering,
    /// Mean reconstruction loss at the end of training.
    pub final_reconstruction_loss: f64,
    /// Number of autoencoder training steps executed.
    pub train_steps: usize,
    /// Reconstruction loss sampled every 32 steps (for convergence
    /// inspection and tests).
    pub loss_curve: Vec<f64>,
}

/// Converts a variable's address trace into training windows.
fn windows_for(
    addrs: &[u64],
    vid: usize,
    vocab: &DeltaVocab,
    bits: usize,
    seq_len: usize,
    max_windows: usize,
) -> Vec<SeqSample> {
    let ds = deltas(addrs);
    let mut out = Vec::new();
    for chunk in ds.chunks(seq_len) {
        if chunk.len() < 2 {
            continue;
        }
        out.push(SeqSample {
            delta_ids: chunk.iter().map(|&d| vocab.id_of(d)).collect(),
            vid_ids: vec![vid; chunk.len()],
            delta_bits: chunk
                .iter()
                .map(|&d| (0..bits).map(|b| ((d >> b) & 1) as f64).collect())
                .collect(),
        });
        if out.len() >= max_windows {
            break;
        }
    }
    out
}

/// The shared setup of both training loops: vocabulary, per-variable
/// windows, and the fixed BFRV feature block.
struct DlProblem {
    bits: usize,
    var_windows: Vec<Vec<SeqSample>>,
    bfrv_features: Vec<Vec<f64>>,
    delta_vocab: usize,
}

/// Deterministic early stopping: stop once the loss has gone
/// `patience` consecutive updates without beating its best value by at
/// least `min_delta`. `patience == 0` disables the rule.
struct EarlyStop {
    best: f64,
    bad: usize,
    patience: usize,
    min_delta: f64,
}

impl EarlyStop {
    fn new(patience: usize, min_delta: f64) -> Self {
        EarlyStop {
            best: f64::INFINITY,
            bad: 0,
            patience,
            min_delta,
        }
    }

    /// Feeds one loss observation; returns `true` when training should
    /// stop.
    fn update(&mut self, loss: f64) -> bool {
        if self.patience == 0 {
            return false;
        }
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.bad = 0;
        } else {
            self.bad += 1;
        }
        self.bad >= self.patience
    }
}

fn build_problem(traces: &[Vec<u64>], addr_bits: u32, config: &TrainingConfig) -> DlProblem {
    assert!(!traces.is_empty(), "need at least one variable");
    assert!((1..=64).contains(&addr_bits), "addr_bits must be 1..=64");
    config.validate();
    let bits = addr_bits as usize;

    let delta_streams: Vec<Vec<u64>> = traces.iter().map(|t| deltas(t)).collect();
    let vocab = DeltaVocab::build(
        delta_streams.iter().map(|v| v.as_slice()),
        config.delta_vocab_cap,
    );

    // Windows per variable (bounded so no variable dominates training).
    let max_windows = 8;
    let var_windows: Vec<Vec<SeqSample>> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| windows_for(t, i, &vocab, bits, config.seq_len, max_windows))
        .collect();

    // Per-variable bit-flip-rate features, appended to the learned
    // embedding before clustering. The paper clusters on the embedding
    // alone; we found that on workloads whose BFRVs are already clean
    // the hybrid representation lets the DL path never fall below the
    // plain-K-Means path while keeping the embedding's tie-breaking
    // power on messy traces.
    let bfrv_features: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| {
            let mut flips = vec![0.0f64; bits];
            for w in t.windows(2) {
                let x = w[0] ^ w[1];
                for (b, f) in flips.iter_mut().enumerate() {
                    *f += ((x >> b) & 1) as f64;
                }
            }
            let n = t.len().saturating_sub(1).max(1) as f64;
            flips.iter().map(|f| f / n).collect()
        })
        .collect();

    DlProblem {
        bits,
        var_windows,
        bfrv_features,
        delta_vocab: vocab.len().max(2),
    }
}

/// Collapses duplicate windows into one weighted sample each,
/// preserving first-seen order. Stride-dominated traces repeat the same
/// Δ window over and over; training each distinct window once with its
/// multiplicity as weight is mathematically the same objective at a
/// fraction of the flops.
fn dedup_windows(ws: &[SeqSample]) -> Vec<(SeqSample, f64)> {
    let mut index: HashMap<(Vec<usize>, Vec<u64>), usize> = HashMap::new();
    let mut out: Vec<(SeqSample, f64)> = Vec::new();
    for w in ws {
        let masks: Vec<u64> = w
            .delta_bits
            .iter()
            .map(|bits| {
                bits.iter()
                    .enumerate()
                    .fold(0u64, |m, (i, &b)| if b != 0.0 { m | (1 << i) } else { m })
            })
            .collect();
        let key = (w.delta_ids.clone(), masks);
        match index.get(&key) {
            Some(&i) => out[i].1 += 1.0,
            None => {
                index.insert(key, out.len());
                out.push((w.clone(), 1.0));
            }
        }
    }
    out
}

/// Runs the full DL-assisted K-Means pipeline over per-variable address
/// traces (`traces[i]` is the ordered address stream of variable `i`).
///
/// Phases, following the paper: (1) train the autoencoder on
/// reconstruction only; (2) K-Means on the embeddings; (3) continue
/// training with the joint loss; (4) final K-Means. Each training phase
/// runs weighted mini-batches of deduplicated windows through the
/// batched kernels and stops early once the joint loss plateaus (see
/// [`TrainingConfig::patience`]); `config.steps` stays the hard cap.
///
/// Variables with fewer than three accesses produce no windows and are
/// assigned to cluster 0.
///
/// # Panics
///
/// Panics if `traces` is empty, `k` is zero, or `addr_bits` is not in
/// `1..=64`.
pub fn cluster_variables_dl(
    traces: &[Vec<u64>],
    addr_bits: u32,
    k: usize,
    config: &TrainingConfig,
) -> DlClustering {
    cluster_variables_dl_threaded(traces, addr_bits, k, config, 1)
}

/// [`cluster_variables_dl`] with an explicit worker-thread count for
/// the mini-batch fan-out. Results are bit-identical for every
/// `threads` value (gradients reduce in fixed input order).
///
/// # Panics
///
/// As [`cluster_variables_dl`].
pub fn cluster_variables_dl_threaded(
    traces: &[Vec<u64>],
    addr_bits: u32,
    k: usize,
    config: &TrainingConfig,
    threads: usize,
) -> DlClustering {
    assert!(k > 0, "k must be positive");
    let problem = build_problem(traces, addr_bits, config);

    // Deduplicate windows per variable: `uniq[i]` carries `weight[i]`
    // duplicates and belongs to variable `owner[i]`.
    let mut uniq: Vec<SeqSample> = Vec::new();
    let mut weight: Vec<f64> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    // Window ranges per variable, for the per-variable embedding mean.
    let mut var_ranges: Vec<std::ops::Range<usize>> = Vec::new();
    for (vid, ws) in problem.var_windows.iter().enumerate() {
        let start = uniq.len();
        for (w, mult) in dedup_windows(ws) {
            uniq.push(w);
            weight.push(mult);
            owner.push(vid);
        }
        var_ranges.push(start..uniq.len());
    }

    let mut ae = LstmAutoencoder::new(problem.delta_vocab, traces.len(), problem.bits, config);

    let embed_vars = |ae: &LstmAutoencoder| -> Vec<Vec<f64>> {
        let refs: Vec<&SeqSample> = uniq.iter().collect();
        let zs = ae.embed_batch(&refs, threads);
        var_ranges
            .iter()
            .zip(&problem.bfrv_features)
            .map(|(range, bfrv)| {
                let mut acc = vec![0.0; ae.embedding_dim()];
                if !range.is_empty() {
                    let mut wsum = 0.0;
                    for i in range.clone() {
                        wsum += weight[i];
                        for (a, v) in acc.iter_mut().zip(&zs[i]) {
                            *a += weight[i] * v;
                        }
                    }
                    for a in &mut acc {
                        *a /= wsum;
                    }
                }
                // Hybrid representation: embedding ⊕ BFRV.
                acc.extend(bfrv.iter().map(|r| r * 2.0));
                acc
            })
            .collect()
    };

    let kcfg = KMeansConfig {
        k,
        seed: config.seed,
        ..KMeansConfig::default()
    };

    let mut steps_done = 0usize;
    let mut last_loss = 0.0;
    let mut loss_curve = Vec::new();
    // Mini-batches walk the deduplicated windows round-robin — no
    // sampling RNG; coverage of every distinct window per cycle.
    const BATCH: usize = 4;
    let mut phase2_embeddings = None;

    if !uniq.is_empty() {
        let batch_at = |step: usize| -> Vec<usize> {
            (0..BATCH.min(uniq.len()))
                .map(|j| (step * BATCH + j) % uniq.len())
                .collect()
        };
        // Phase 1: reconstruction pre-training.
        let phase1_cap = config.steps / 2;
        let mut stop = EarlyStop::new(config.patience, config.min_delta);
        for step in 0..phase1_cap {
            let items: Vec<MiniBatchItem<'_>> = batch_at(step)
                .into_iter()
                .map(|i| MiniBatchItem {
                    sample: &uniq[i],
                    weight: weight[i],
                    target: None,
                })
                .collect();
            let l = ae.train_minibatch(&items, config.learning_rate, threads);
            last_loss = l.reconstruct;
            if steps_done.is_multiple_of(32) {
                loss_curve.push(last_loss);
            }
            steps_done += 1;
            if stop.update(l.total(config.lambda)) {
                break;
            }
        }
        // Phase 2: initial clustering on embeddings.
        let embeddings = embed_vars(&ae);
        let clustering = kmeans(&embeddings, &kcfg);
        phase2_embeddings = Some(embeddings);
        // Phase 3: joint training against assigned centroids. Pull the
        // embedding toward the embedding-part of the centroid (the
        // BFRV features are fixed, not trainable).
        let dim = ae.embedding_dim();
        let phase3_cap = config.steps.saturating_sub(phase1_cap);
        let mut stop = EarlyStop::new(config.patience, config.min_delta);
        let mut phase3_steps = 0usize;
        for step in 0..phase3_cap {
            let items: Vec<MiniBatchItem<'_>> = batch_at(step)
                .into_iter()
                .map(|i| MiniBatchItem {
                    sample: &uniq[i],
                    weight: weight[i],
                    target: Some(&clustering.centroids[clustering.assignments[owner[i]]][..dim]),
                })
                .collect();
            let l = ae.train_minibatch(&items, config.learning_rate, threads);
            last_loss = l.reconstruct;
            if steps_done.is_multiple_of(32) {
                loss_curve.push(last_loss);
            }
            steps_done += 1;
            phase3_steps += 1;
            if stop.update(l.total(config.lambda)) {
                break;
            }
        }
        if phase3_steps > 0 {
            phase2_embeddings = None; // parameters moved; re-encode
        }
    }

    // Phase 4: final clustering — reusing the phase-2 embeddings when
    // the joint phase did not move the parameters.
    let embeddings = match phase2_embeddings {
        Some(e) => e,
        None => embed_vars(&ae),
    };
    let clustering = kmeans(&embeddings, &kcfg);
    DlClustering {
        assignments: clustering.assignments.clone(),
        embeddings,
        clustering,
        final_reconstruction_loss: last_loss,
        train_steps: steps_done,
        loss_curve,
    }
}

/// The original per-step training loop, preserved as the reference
/// oracle for the batched path: uniform window sampling from a seeded
/// RNG, the full fixed `config.steps` schedule (no early stopping, no
/// deduplication), per-sample forward/backward kernels, and per-window
/// encoding in `embed_vars`. Slower by orders of magnitude on
/// stride-dominated traces; use [`cluster_variables_dl`] outside of
/// equivalence tests and benches.
///
/// # Panics
///
/// As [`cluster_variables_dl`].
pub fn cluster_variables_dl_reference(
    traces: &[Vec<u64>],
    addr_bits: u32,
    k: usize,
    config: &TrainingConfig,
) -> DlClustering {
    assert!(k > 0, "k must be positive");
    let problem = build_problem(traces, addr_bits, config);
    let var_windows = &problem.var_windows;
    let all: Vec<&SeqSample> = var_windows.iter().flatten().collect();

    let mut ae = LstmAutoencoder::new(problem.delta_vocab, traces.len(), problem.bits, config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xd1);

    let embed_vars = |ae: &LstmAutoencoder| -> Vec<Vec<f64>> {
        var_windows
            .iter()
            .zip(&problem.bfrv_features)
            .map(|(ws, bfrv)| {
                let mut acc = vec![0.0; ae.embedding_dim()];
                if !ws.is_empty() {
                    for w in ws {
                        for (a, v) in acc.iter_mut().zip(ae.embed(w)) {
                            *a += v;
                        }
                    }
                    for a in &mut acc {
                        *a /= ws.len() as f64;
                    }
                }
                // Hybrid representation: embedding ⊕ BFRV.
                acc.extend(bfrv.iter().map(|r| r * 2.0));
                acc
            })
            .collect()
    };

    let kcfg = KMeansConfig {
        k,
        seed: config.seed,
        ..KMeansConfig::default()
    };

    let mut steps_done = 0usize;
    let mut last_loss = 0.0;
    let mut loss_curve = Vec::new();

    if !all.is_empty() {
        // Phase 1: reconstruction pre-training in mini-batches of 4 —
        // smoother gradients across heterogeneous variable windows.
        let phase1 = config.steps / 2;
        const BATCH: usize = 4;
        for _ in 0..phase1 {
            let batch: Vec<&SeqSample> = (0..BATCH.min(all.len()))
                .map(|_| all[rng.gen_range(0..all.len())])
                .collect();
            last_loss = ae.train_batch(&batch, config.learning_rate).reconstruct;
            if steps_done.is_multiple_of(32) {
                loss_curve.push(last_loss);
            }
            steps_done += 1;
        }
        // Phase 2: initial clustering on embeddings.
        let clustering = kmeans(&embed_vars(&ae), &kcfg);
        // Phase 3: joint training against assigned centroids.
        let mut window_owner = Vec::new();
        for (vid, ws) in var_windows.iter().enumerate() {
            for _ in ws {
                window_owner.push(vid);
            }
        }
        for _ in phase1..config.steps {
            let idx = rng.gen_range(0..all.len());
            let vid = window_owner[idx];
            // Pull the embedding toward the embedding-part of the
            // centroid (the BFRV features are fixed, not trainable).
            let mu: Vec<f64> =
                clustering.centroids[clustering.assignments[vid]][..ae.embedding_dim()].to_vec();
            last_loss = ae
                .train_step(all[idx], Some(&mu), config.learning_rate)
                .reconstruct;
            if steps_done.is_multiple_of(32) {
                loss_curve.push(last_loss);
            }
            steps_done += 1;
        }
    }

    // Phase 4: final clustering.
    let embeddings = embed_vars(&ae);
    let clustering = kmeans(&embeddings, &kcfg);
    DlClustering {
        assignments: clustering.assignments.clone(),
        embeddings,
        clustering,
        final_reconstruction_loss: last_loss,
        train_steps: steps_done,
        loss_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stride_trace(stride: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * stride * 64).collect()
    }

    #[test]
    fn deltas_are_xors() {
        assert_eq!(deltas(&[1, 3, 7]), vec![2, 4]);
        assert!(deltas(&[5]).is_empty());
        assert!(deltas(&[]).is_empty());
    }

    #[test]
    fn vocab_caps_and_reserves_unknown() {
        let s1 = vec![1u64, 2, 3, 4, 5];
        let v = DeltaVocab::build([s1.as_slice()], 4);
        assert_eq!(v.len(), 4); // UNK + 3 kept
        assert_ne!(v.id_of(1), 0);
        assert_eq!(v.id_of(99), 0);
        assert_eq!(v.cap(), 4);
    }

    #[test]
    fn vocab_caps_across_multiple_streams() {
        let a = vec![1u64, 2];
        let b = vec![3u64, 4, 5];
        let v = DeltaVocab::build([a.as_slice(), b.as_slice()], 4);
        assert_eq!(v.len(), 4); // UNK + 1, 2, 3
        assert_ne!(v.id_of(3), 0);
        assert_eq!(v.id_of(4), 0);
        assert_eq!(v.id_of(5), 0);
    }

    #[test]
    fn vocab_cap_short_circuits_across_streams() {
        // A full vocabulary must stop consuming streams entirely: the
        // second stream here panics if it is ever produced.
        let s1: Vec<u64> = (1..=10).collect();
        let poisoned = std::iter::once(s1.as_slice()).chain(std::iter::once_with(|| -> &[u64] {
            panic!("second stream iterated past the cap")
        }));
        let v = DeltaVocab::build(poisoned, 4);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn same_stride_variables_cluster_together() {
        // Four variables: two stride-1, two stride-16 — should form two
        // clusters that separate the strides.
        let traces = vec![
            stride_trace(1, 200),
            stride_trace(1, 200),
            stride_trace(16, 200),
            stride_trace(16, 200),
        ];
        let cfg = TrainingConfig {
            steps: 200,
            ..TrainingConfig::laptop()
        };
        let r = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert_eq!(r.assignments.len(), 4);
        assert_eq!(r.assignments[0], r.assignments[1], "stride-1 pair split");
        assert_eq!(r.assignments[2], r.assignments[3], "stride-16 pair split");
        assert_ne!(r.assignments[0], r.assignments[2], "strides merged");
        assert!(r.train_steps > 0);
    }

    #[test]
    fn early_stop_patience_rule() {
        let mut s = EarlyStop::new(2, 0.1);
        assert!(!s.update(1.0)); // best = 1.0
        assert!(!s.update(0.95)); // within min_delta: bad = 1
        assert!(s.update(0.99)); // bad = 2 -> stop
        let mut s = EarlyStop::new(2, 0.1);
        assert!(!s.update(1.0));
        assert!(!s.update(0.8)); // real improvement resets
        assert!(!s.update(0.79));
        assert!(s.update(0.78));
        // patience == 0 never stops.
        let mut s = EarlyStop::new(0, 0.1);
        for _ in 0..100 {
            assert!(!s.update(1.0));
        }
    }

    #[test]
    fn dedup_collapses_repeated_windows() {
        // A ping-pong trace has one constant XOR Δ: every window is
        // identical, so dedup must collapse them all into one sample
        // carrying the full multiplicity.
        let t: Vec<u64> = (0..200u64).map(|i| (i % 2) * 64).collect();
        let cfg = TrainingConfig::laptop();
        let deltas_v: Vec<Vec<u64>> = vec![deltas(&t)];
        let vocab = DeltaVocab::build(deltas_v.iter().map(|v| v.as_slice()), cfg.delta_vocab_cap);
        let ws = windows_for(&t, 0, &vocab, 33, cfg.seq_len, 8);
        assert!(ws.len() > 1);
        let uniq = dedup_windows(&ws);
        assert_eq!(uniq.len(), 1, "identical windows not collapsed");
        assert_eq!(uniq[0].1, ws.len() as f64, "multiplicity lost");
        // Distinct windows stay distinct.
        let t2: Vec<u64> = (0..40u64).map(|i| i * i * 64).collect();
        let ws2 = windows_for(&t2, 0, &vocab, 33, cfg.seq_len, 8);
        let uniq2 = dedup_windows(&ws2);
        assert!(uniq2.len() > 1, "distinct windows merged");
        let total: f64 = uniq2.iter().map(|(_, w)| w).sum();
        assert_eq!(total, ws2.len() as f64);
    }

    #[test]
    fn threaded_matches_serial_bit_identical() {
        let traces = vec![
            stride_trace(1, 150),
            stride_trace(8, 150),
            (0..60u64).map(|i| i * i * 64).collect(),
        ];
        let cfg = TrainingConfig {
            steps: 60,
            ..TrainingConfig::laptop()
        };
        let serial = cluster_variables_dl_threaded(&traces, 33, 2, &cfg, 1);
        for threads in [2, 4] {
            let par = cluster_variables_dl_threaded(&traces, 33, 2, &cfg, threads);
            assert_eq!(serial.assignments, par.assignments, "threads={threads}");
            assert_eq!(serial.embeddings, par.embeddings, "threads={threads}");
            assert_eq!(serial.loss_curve, par.loss_curve, "threads={threads}");
            assert_eq!(serial.train_steps, par.train_steps, "threads={threads}");
        }
    }

    #[test]
    fn reference_path_separates_strides() {
        let traces = vec![
            stride_trace(1, 200),
            stride_trace(1, 200),
            stride_trace(16, 200),
            stride_trace(16, 200),
        ];
        let cfg = TrainingConfig {
            steps: 200,
            ..TrainingConfig::laptop()
        };
        let r = cluster_variables_dl_reference(&traces, 33, 2, &cfg);
        assert_eq!(r.assignments[0], r.assignments[1], "stride-1 pair split");
        assert_eq!(r.assignments[2], r.assignments[3], "stride-16 pair split");
        assert_ne!(r.assignments[0], r.assignments[2], "strides merged");
        assert_eq!(r.train_steps, 200, "reference must run the full schedule");
    }

    #[test]
    fn loss_curve_trends_downward() {
        let traces = vec![stride_trace(1, 300), stride_trace(16, 300)];
        // patience: 0 — this test needs the full fixed schedule so the
        // curve has enough samples to compare head vs tail.
        let cfg = TrainingConfig {
            steps: 640,
            patience: 0,
            ..TrainingConfig::laptop()
        };
        let r = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert!(r.loss_curve.len() >= 10);
        let head: f64 = r.loss_curve[..3].iter().sum::<f64>() / 3.0;
        let tail: f64 = r.loss_curve[r.loss_curve.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            tail < head,
            "training did not reduce the loss: {head} -> {tail}"
        );
    }

    #[test]
    fn tiny_traces_do_not_crash() {
        let traces = vec![vec![0u64], vec![64, 128, 192, 256]];
        let cfg = TrainingConfig {
            steps: 10,
            ..TrainingConfig::laptop()
        };
        let r = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert_eq!(r.assignments.len(), 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let traces = vec![stride_trace(1, 100), stride_trace(8, 100)];
        let cfg = TrainingConfig {
            steps: 50,
            ..TrainingConfig::laptop()
        };
        let a = cluster_variables_dl(&traces, 33, 2, &cfg);
        let b = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.embeddings, b.embeddings);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_input_panics() {
        let _ = cluster_variables_dl(&[], 33, 2, &TrainingConfig::laptop());
    }
}
