//! DL-assisted K-Means: the paper's full §6.2 pipeline.
//!
//! Per-variable address traces become `(Δ, VID)` sequences; the
//! [`LstmAutoencoder`] learns a clustering-friendly embedding; K-Means
//! runs on the embeddings; training continues with the joint loss; the
//! final clusters assign one address mapping per cluster.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::autoencoder::{LstmAutoencoder, SeqSample};
use crate::kmeans::{kmeans, Clustering, KMeansConfig};
use crate::TrainingConfig;

/// XOR deltas between consecutive addresses (the paper's Δ).
///
/// An input of fewer than two addresses yields an empty delta trace.
pub fn deltas(addrs: &[u64]) -> Vec<u64> {
    addrs.windows(2).map(|w| w[0] ^ w[1]).collect()
}

/// A capped vocabulary over Δ values. Id 0 is the unknown/overflow slot.
#[derive(Debug, Clone, Default)]
pub struct DeltaVocab {
    map: HashMap<u64, usize>,
    cap: usize,
}

impl DeltaVocab {
    /// Builds a vocabulary from delta streams, keeping the first
    /// `cap - 1` distinct values (slot 0 is reserved for the rest).
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    pub fn build<'a, I>(streams: I, cap: usize) -> Self
    where
        I: IntoIterator<Item = &'a [u64]>,
    {
        assert!(
            cap >= 2,
            "vocabulary must have room beyond the unknown slot"
        );
        let mut map = HashMap::new();
        for s in streams {
            for &d in s {
                if map.len() + 1 >= cap {
                    break;
                }
                let next = map.len() + 1;
                map.entry(d).or_insert(next);
            }
        }
        DeltaVocab { map, cap }
    }

    /// Vocabulary size including the unknown slot.
    pub fn len(&self) -> usize {
        self.map.len() + 1
    }

    /// True when only the unknown slot exists.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks a delta up (0 for out-of-vocabulary).
    pub fn id_of(&self, delta: u64) -> usize {
        self.map.get(&delta).copied().unwrap_or(0)
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

/// The result of the DL-assisted clustering.
#[derive(Debug, Clone)]
pub struct DlClustering {
    /// Cluster index per input variable (parallel to the input order).
    pub assignments: Vec<usize>,
    /// Final per-variable embeddings.
    pub embeddings: Vec<Vec<f64>>,
    /// The final K-Means state on the embeddings.
    pub clustering: Clustering,
    /// Mean reconstruction loss at the end of training.
    pub final_reconstruction_loss: f64,
    /// Number of autoencoder training steps executed.
    pub train_steps: usize,
    /// Reconstruction loss sampled every 32 steps (for convergence
    /// inspection and tests).
    pub loss_curve: Vec<f64>,
}

/// Converts a variable's address trace into training windows.
fn windows_for(
    addrs: &[u64],
    vid: usize,
    vocab: &DeltaVocab,
    bits: usize,
    seq_len: usize,
    max_windows: usize,
) -> Vec<SeqSample> {
    let ds = deltas(addrs);
    let mut out = Vec::new();
    for chunk in ds.chunks(seq_len) {
        if chunk.len() < 2 {
            continue;
        }
        out.push(SeqSample {
            delta_ids: chunk.iter().map(|&d| vocab.id_of(d)).collect(),
            vid_ids: vec![vid; chunk.len()],
            delta_bits: chunk
                .iter()
                .map(|&d| (0..bits).map(|b| ((d >> b) & 1) as f64).collect())
                .collect(),
        });
        if out.len() >= max_windows {
            break;
        }
    }
    out
}

/// Runs the full DL-assisted K-Means pipeline over per-variable address
/// traces (`traces[i]` is the ordered address stream of variable `i`).
///
/// Phases, following the paper: (1) train the autoencoder on
/// reconstruction only; (2) K-Means on the embeddings; (3) continue
/// training with the joint loss; (4) final K-Means.
///
/// Variables with fewer than three accesses produce no windows and are
/// assigned to cluster 0.
///
/// # Panics
///
/// Panics if `traces` is empty, `k` is zero, or `addr_bits` is not in
/// `1..=64`.
pub fn cluster_variables_dl(
    traces: &[Vec<u64>],
    addr_bits: u32,
    k: usize,
    config: &TrainingConfig,
) -> DlClustering {
    assert!(!traces.is_empty(), "need at least one variable");
    assert!(k > 0, "k must be positive");
    assert!((1..=64).contains(&addr_bits), "addr_bits must be 1..=64");
    config.validate();
    let bits = addr_bits as usize;

    let delta_streams: Vec<Vec<u64>> = traces.iter().map(|t| deltas(t)).collect();
    let vocab = DeltaVocab::build(
        delta_streams.iter().map(|v| v.as_slice()),
        config.delta_vocab_cap,
    );

    // Windows per variable (bounded so no variable dominates training).
    let max_windows = 8;
    let var_windows: Vec<Vec<SeqSample>> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| windows_for(t, i, &vocab, bits, config.seq_len, max_windows))
        .collect();
    let all: Vec<&SeqSample> = var_windows.iter().flatten().collect();

    let mut ae = LstmAutoencoder::new(vocab.len().max(2), traces.len(), bits, config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xd1);

    // Per-variable bit-flip-rate features, appended to the learned
    // embedding before clustering. The paper clusters on the embedding
    // alone; we found that on workloads whose BFRVs are already clean
    // the hybrid representation lets the DL path never fall below the
    // plain-K-Means path while keeping the embedding's tie-breaking
    // power on messy traces.
    let bfrv_features: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| {
            let mut flips = vec![0.0f64; bits];
            for w in t.windows(2) {
                let x = w[0] ^ w[1];
                for (b, f) in flips.iter_mut().enumerate() {
                    *f += ((x >> b) & 1) as f64;
                }
            }
            let n = t.len().saturating_sub(1).max(1) as f64;
            flips.iter().map(|f| f / n).collect()
        })
        .collect();

    let embed_vars = |ae: &LstmAutoencoder| -> Vec<Vec<f64>> {
        var_windows
            .iter()
            .zip(&bfrv_features)
            .map(|(ws, bfrv)| {
                let mut acc = vec![0.0; ae.embedding_dim()];
                if !ws.is_empty() {
                    for w in ws {
                        for (a, v) in acc.iter_mut().zip(ae.embed(w)) {
                            *a += v;
                        }
                    }
                    for a in &mut acc {
                        *a /= ws.len() as f64;
                    }
                }
                // Hybrid representation: embedding ⊕ BFRV.
                acc.extend(bfrv.iter().map(|r| r * 2.0));
                acc
            })
            .collect()
    };

    let kcfg = KMeansConfig {
        k,
        seed: config.seed,
        ..KMeansConfig::default()
    };

    let mut steps_done = 0usize;
    let mut last_loss = 0.0;
    let mut loss_curve = Vec::new();

    if !all.is_empty() {
        // Phase 1: reconstruction pre-training in mini-batches of 4 —
        // smoother gradients across heterogeneous variable windows.
        let phase1 = config.steps / 2;
        const BATCH: usize = 4;
        for _ in 0..phase1 {
            let batch: Vec<&SeqSample> = (0..BATCH.min(all.len()))
                .map(|_| all[rng.gen_range(0..all.len())])
                .collect();
            last_loss = ae.train_batch(&batch, config.learning_rate).reconstruct;
            if steps_done.is_multiple_of(32) {
                loss_curve.push(last_loss);
            }
            steps_done += 1;
        }
        // Phase 2: initial clustering on embeddings.
        let clustering = kmeans(&embed_vars(&ae), &kcfg);
        // Phase 3: joint training against assigned centroids.
        let mut window_owner = Vec::new();
        for (vid, ws) in var_windows.iter().enumerate() {
            for _ in ws {
                window_owner.push(vid);
            }
        }
        for _ in phase1..config.steps {
            let idx = rng.gen_range(0..all.len());
            let vid = window_owner[idx];
            // Pull the embedding toward the embedding-part of the
            // centroid (the BFRV features are fixed, not trainable).
            let mu: Vec<f64> =
                clustering.centroids[clustering.assignments[vid]][..ae.embedding_dim()].to_vec();
            last_loss = ae
                .train_step(all[idx], Some(&mu), config.learning_rate)
                .reconstruct;
            if steps_done.is_multiple_of(32) {
                loss_curve.push(last_loss);
            }
            steps_done += 1;
        }
    }

    // Phase 4: final clustering.
    let embeddings = embed_vars(&ae);
    let clustering = kmeans(&embeddings, &kcfg);
    DlClustering {
        assignments: clustering.assignments.clone(),
        embeddings,
        clustering,
        final_reconstruction_loss: last_loss,
        train_steps: steps_done,
        loss_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stride_trace(stride: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * stride * 64).collect()
    }

    #[test]
    fn deltas_are_xors() {
        assert_eq!(deltas(&[1, 3, 7]), vec![2, 4]);
        assert!(deltas(&[5]).is_empty());
        assert!(deltas(&[]).is_empty());
    }

    #[test]
    fn vocab_caps_and_reserves_unknown() {
        let s1 = vec![1u64, 2, 3, 4, 5];
        let v = DeltaVocab::build([s1.as_slice()], 4);
        assert_eq!(v.len(), 4); // UNK + 3 kept
        assert_ne!(v.id_of(1), 0);
        assert_eq!(v.id_of(99), 0);
        assert_eq!(v.cap(), 4);
    }

    #[test]
    fn same_stride_variables_cluster_together() {
        // Four variables: two stride-1, two stride-16 — should form two
        // clusters that separate the strides.
        let traces = vec![
            stride_trace(1, 200),
            stride_trace(1, 200),
            stride_trace(16, 200),
            stride_trace(16, 200),
        ];
        let cfg = TrainingConfig {
            steps: 200,
            ..TrainingConfig::laptop()
        };
        let r = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert_eq!(r.assignments.len(), 4);
        assert_eq!(r.assignments[0], r.assignments[1], "stride-1 pair split");
        assert_eq!(r.assignments[2], r.assignments[3], "stride-16 pair split");
        assert_ne!(r.assignments[0], r.assignments[2], "strides merged");
        assert!(r.train_steps > 0);
    }

    #[test]
    fn loss_curve_trends_downward() {
        let traces = vec![stride_trace(1, 300), stride_trace(16, 300)];
        let cfg = TrainingConfig {
            steps: 640,
            ..TrainingConfig::laptop()
        };
        let r = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert!(r.loss_curve.len() >= 10);
        let head: f64 = r.loss_curve[..3].iter().sum::<f64>() / 3.0;
        let tail: f64 = r.loss_curve[r.loss_curve.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            tail < head,
            "training did not reduce the loss: {head} -> {tail}"
        );
    }

    #[test]
    fn tiny_traces_do_not_crash() {
        let traces = vec![vec![0u64], vec![64, 128, 192, 256]];
        let cfg = TrainingConfig {
            steps: 10,
            ..TrainingConfig::laptop()
        };
        let r = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert_eq!(r.assignments.len(), 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let traces = vec![stride_trace(1, 100), stride_trace(8, 100)];
        let cfg = TrainingConfig {
            steps: 50,
            ..TrainingConfig::laptop()
        };
        let a = cluster_variables_dl(&traces, 33, 2, &cfg);
        let b = cluster_variables_dl(&traces, 33, 2, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.embeddings, b.embeddings);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_input_panics() {
        let _ = cluster_variables_dl(&[], 33, 2, &TrainingConfig::laptop());
    }
}
