//! # sdam-obs — workspace-wide observability
//!
//! A deliberately tiny, zero-dependency metrics and event-tracing layer
//! shared by every SDAM crate. It exists because the paper's argument is
//! *measured*: per-channel bandwidth, row-buffer hit rates and profiling
//! cost are the evidence (SDAM §5–6), so the reproduction needs one
//! uniform way to count them rather than three divergent ad-hoc stat
//! structs.
//!
//! Three building blocks:
//!
//! * [`Registry`] — named monotonic counters, volatile (wall-clock)
//!   values, [`Log2Histogram`]s and an [`EventRing`], with a
//!   deterministic merge and a stable JSON snapshot.
//! * [`Log2Histogram`] / [`CountHistogram`] — fixed-bucket and exact
//!   histograms used both inside the registry and directly by
//!   `sdam-trace`'s stride profiling.
//! * [`EventRing`] — a bounded, sequence-numbered ring of structured
//!   events (chunk alloc/free, heap growth) that drops oldest-first and
//!   counts what it dropped.
//!
//! ## Determinism contract
//!
//! Everything in the *stable* snapshot ([`Registry::stable_json`]) must
//! be a pure function of the simulated run: counters, histograms and
//! events only. Wall-clock durations go in the *volatile* section
//! ([`Registry::set_volatile`]) and are excluded from `stable_json`, so
//! golden-snapshot and serial-vs-threaded bit-identity tests compare
//! stable output only. Maps are `BTreeMap`s and the JSON emitter is
//! hand-rolled, so two equal registries always serialize to byte-equal
//! strings.
//!
//! Sharded producers (e.g. the per-channel HBM drain workers) never
//! share a registry: each shard accumulates plain `u64` counters locally
//! and the driver merges them in shard-id order at the barrier via
//! [`Registry::merge`] or plain field addition. No atomics in hot loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod event;
mod hist;
mod json;
mod registry;

pub use event::{Event, EventRing, DEFAULT_RING_CAPACITY};
pub use hist::{CountHistogram, Log2Histogram, LOG2_BUCKETS};
pub use registry::Registry;
