//! A bounded ring buffer of structured trace events.

use std::collections::VecDeque;

/// Default capacity of an [`EventRing`].
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One structured event: a dotted kind (`mem.chunk_acquired`), a
/// monotonic sequence number assigned by the ring, and a small set of
/// named `u64` fields in recording order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the ring's total emission order (including dropped
    /// predecessors).
    pub seq: u64,
    /// Dotted event kind, e.g. `mem.heap_created`.
    pub kind: String,
    /// Named payload values, in the order the producer listed them.
    pub fields: Vec<(String, u64)>,
}

/// A bounded, oldest-first-dropping ring of [`Event`]s.
///
/// Every pushed event gets the next sequence number even if it later
/// falls off the ring, so consumers can detect gaps; `dropped()` counts
/// evictions. Merging appends the other ring's events in order and
/// re-assigns sequence numbers, which keeps merged output deterministic
/// when shards are merged in a fixed order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRing {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

impl Default for EventRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap == 0` keeps nothing
    /// but still counts and sequences pushes).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            cap,
            next_seq: 0,
            dropped: 0,
            events: VecDeque::with_capacity(cap.min(1024)),
        }
    }

    /// Appends one event, evicting the oldest if full. Returns the
    /// sequence number assigned.
    pub fn push(&mut self, kind: &str, fields: &[(&str, u64)]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return seq;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq,
            kind: kind.to_owned(),
            fields: fields.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        });
        seq
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Capacity the ring was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted (or refused by a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed, held or not.
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Appends all of `other`'s held events (in order, re-sequenced)
    /// and adds its drop count.
    pub fn merge(&mut self, other: &Self) {
        for e in other.iter() {
            let seq = self.next_seq;
            self.next_seq += 1;
            if self.cap == 0 {
                self.dropped += 1;
                continue;
            }
            if self.events.len() == self.cap {
                self.events.pop_front();
                self.dropped += 1;
            }
            let mut e = e.clone();
            e.seq = seq;
            self.events.push_back(e);
        }
        self.dropped += other.dropped;
    }

    /// Removes all events and resets sequencing.
    pub fn clear(&mut self) {
        self.events.clear();
        self.next_seq = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sequences_and_evicts() {
        let mut r = EventRing::with_capacity(2);
        assert_eq!(r.push("a", &[("x", 1)]), 0);
        assert_eq!(r.push("b", &[]), 1);
        assert_eq!(r.push("c", &[]), 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.total_pushed(), 3);
        let kinds: Vec<&str> = r.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["b", "c"]);
        assert_eq!(r.iter().next().unwrap().seq, 1);
    }

    #[test]
    fn zero_capacity_counts_but_holds_nothing() {
        let mut r = EventRing::with_capacity(0);
        r.push("a", &[]);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.total_pushed(), 1);
    }

    #[test]
    fn merge_resequences_in_order() {
        let mut a = EventRing::with_capacity(8);
        a.push("a0", &[]);
        let mut b = EventRing::with_capacity(8);
        b.push("b0", &[("v", 7)]);
        b.push("b1", &[]);
        a.merge(&b);
        let seqs: Vec<u64> = a.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let kinds: Vec<&str> = a.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["a0", "b0", "b1"]);
        assert_eq!(a.iter().nth(1).unwrap().fields, vec![("v".to_owned(), 7)]);
    }

    #[test]
    fn clear_resets() {
        let mut r = EventRing::default();
        assert_eq!(r.capacity(), DEFAULT_RING_CAPACITY);
        r.push("a", &[]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 0);
    }
}
