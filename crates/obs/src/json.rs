//! A minimal, deterministic JSON writer.
//!
//! Only what the snapshot schema needs: objects with string keys,
//! arrays, `u64` numbers and strings. Output is pretty-printed with
//! two-space indentation so golden-fixture diffs stay readable, and key
//! order is exactly the order the caller writes — the registry feeds it
//! from `BTreeMap`s, so equal registries produce byte-equal JSON.

/// Escapes `s` for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental pretty-printer. The caller is responsible for balanced
/// `open`/`close` calls; commas and indentation are handled here.
pub struct Writer {
    buf: String,
    indent: usize,
    need_comma: Vec<bool>,
}

impl Writer {
    /// A writer positioned at the start of a document.
    pub fn new() -> Self {
        Self {
            buf: String::new(),
            indent: 0,
            need_comma: vec![false],
        }
    }

    fn pre_item(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
        if self.indent > 0 {
            self.buf.push('\n');
            self.buf.push_str(&"  ".repeat(self.indent));
        }
    }

    fn open(&mut self, key: Option<&str>, delim: char) {
        self.pre_item();
        if let Some(k) = key {
            self.buf.push('"');
            self.buf.push_str(&escape(k));
            self.buf.push_str("\": ");
        }
        self.buf.push(delim);
        self.indent += 1;
        self.need_comma.push(false);
    }

    fn close(&mut self, delim: char) {
        let had_items = self.need_comma.pop().unwrap_or(false);
        self.indent -= 1;
        if had_items {
            self.buf.push('\n');
            self.buf.push_str(&"  ".repeat(self.indent));
        }
        self.buf.push(delim);
    }

    /// Opens an object, optionally as the value of `key`.
    pub fn open_object(&mut self, key: Option<&str>) {
        self.open(key, '{');
    }

    /// Closes the innermost object.
    pub fn close_object(&mut self) {
        self.close('}');
    }

    /// Opens an array, optionally as the value of `key`.
    pub fn open_array(&mut self, key: Option<&str>) {
        self.open(key, '[');
    }

    /// Closes the innermost array.
    pub fn close_array(&mut self) {
        self.close(']');
    }

    /// Writes `"key": value`.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.pre_item();
        self.buf
            .push_str(&format!("\"{}\": {}", escape(key), value));
    }

    /// Writes `"key": "value"`.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.pre_item();
        self.buf
            .push_str(&format!("\"{}\": \"{}\"", escape(key), escape(value)));
    }

    /// Writes a bare `[a, b]` pair as an array element.
    pub fn pair_u64(&mut self, a: u64, b: u64) {
        self.pre_item();
        self.buf.push_str(&format!("[{a}, {b}]"));
    }

    /// Finishes the document (appends a trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('\n');
        self.buf
    }
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn nested_document_shape() {
        let mut w = Writer::new();
        w.open_object(None);
        w.field_u64("n", 3);
        w.open_object(Some("inner"));
        w.field_str("s", "x");
        w.close_object();
        w.open_array(Some("pairs"));
        w.pair_u64(1, 2);
        w.pair_u64(3, 4);
        w.close_array();
        w.open_array(Some("empty"));
        w.close_array();
        w.close_object();
        let got = w.finish();
        let want = "{\n  \"n\": 3,\n  \"inner\": {\n    \"s\": \"x\"\n  },\n  \"pairs\": [\n    [1, 2],\n    [3, 4]\n  ],\n  \"empty\": []\n}\n";
        assert_eq!(got, want);
    }
}
