//! The metrics registry: named counters, volatile values, histograms
//! and an event ring, with deterministic merge and JSON snapshots.

use std::collections::BTreeMap;

use crate::event::EventRing;
use crate::hist::Log2Histogram;
use crate::json::Writer;

/// A bag of named metrics for one run (or one merged set of runs).
///
/// Names are dotted paths (`hbm.channel.03.row_hits`). All maps are
/// sorted, so iteration, equality and serialization are deterministic.
///
/// The registry distinguishes *stable* values — pure functions of the
/// simulated run, safe to pin in golden fixtures and to compare across
/// serial and threaded drivers — from *volatile* ones (wall-clock
/// timings), which only appear in [`Registry::full_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    volatile: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Log2Histogram>,
    events: EventRing,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name`, creating it at zero.
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Sets counter `name` to an absolute value (for gauges sampled at
    /// snapshot time, e.g. live chunk counts).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// `(name, value)` over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sets a volatile (wall-clock) value, excluded from the stable
    /// snapshot and from cross-driver comparisons.
    pub fn set_volatile(&mut self, name: &str, value: u64) {
        self.volatile.insert(name.to_owned(), value);
    }

    /// Current volatile value (0 when absent).
    pub fn volatile(&self, name: &str) -> u64 {
        self.volatile.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`, creating it if needed.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// The histogram `name`, if any values were observed.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// Shared access to the event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Mutable access to the event ring.
    pub fn events_mut(&mut self) -> &mut EventRing {
        &mut self.events
    }

    /// Whether nothing has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.volatile.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.events.total_pushed() == 0
    }

    /// Merges `other` into `self`: counters and volatile values add,
    /// histograms merge element-wise, events append in `other`'s order.
    ///
    /// Deterministic-merge rule: when combining sharded or per-run
    /// registries, always merge in a fixed order (shard id, lineup
    /// index) — merge order is the only ordering input.
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.volatile {
            *self.volatile.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        self.events.merge(&other.events);
    }

    fn to_json(&self, include_volatile: bool) -> String {
        let mut w = Writer::new();
        w.open_object(None);
        w.open_object(Some("counters"));
        for (k, v) in &self.counters {
            w.field_u64(k, *v);
        }
        w.close_object();
        w.open_object(Some("histograms"));
        for (k, h) in &self.histograms {
            w.open_object(Some(k));
            w.field_u64("count", h.count());
            w.field_u64("sum", h.sum());
            w.open_array(Some("buckets"));
            for (b, c) in h.nonzero_buckets() {
                w.pair_u64(b as u64, c);
            }
            w.close_array();
            w.close_object();
        }
        w.close_object();
        w.open_object(Some("events"));
        w.field_u64("dropped", self.events.dropped());
        w.open_array(Some("entries"));
        for e in self.events.iter() {
            w.open_object(None);
            w.field_u64("seq", e.seq);
            w.field_str("kind", &e.kind);
            w.open_object(Some("fields"));
            for (k, v) in &e.fields {
                w.field_u64(k, *v);
            }
            w.close_object();
            w.close_object();
        }
        w.close_array();
        w.close_object();
        if include_volatile {
            w.open_object(Some("volatile"));
            for (k, v) in &self.volatile {
                w.field_u64(k, *v);
            }
            w.close_object();
        }
        w.close_object();
        w.finish()
    }

    /// The deterministic snapshot: counters, histograms and events.
    /// Equal registries (ignoring volatile values) produce byte-equal
    /// output; this is what golden fixtures pin.
    pub fn stable_json(&self) -> String {
        self.to_json(false)
    }

    /// The full snapshot, including the volatile section.
    pub fn full_json(&self) -> String {
        self.to_json(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.incr("hbm.requests", 5);
        r.incr("hbm.requests", 2);
        r.set("mem.live_chunks", 3);
        r.set_volatile("stage.profile.nanos", 123);
        r.observe("hbm.channel_requests", 4);
        r.observe("hbm.channel_requests", 5);
        r.events_mut().push("mem.chunk_acquired", &[("chunk", 7)]);
        r
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let r = sample();
        assert_eq!(r.counter("hbm.requests"), 7);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.volatile("stage.profile.nanos"), 123);
        assert_eq!(r.histogram("hbm.channel_requests").unwrap().count(), 2);
        assert!(r.histogram("absent").is_none());
        assert!(!r.is_empty());
        assert!(Registry::new().is_empty());
    }

    #[test]
    fn merge_adds_everything_in_order() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("hbm.requests"), 14);
        assert_eq!(a.counter("mem.live_chunks"), 6);
        assert_eq!(a.volatile("stage.profile.nanos"), 246);
        assert_eq!(a.histogram("hbm.channel_requests").unwrap().count(), 4);
        assert_eq!(a.events().len(), 2);
        let seqs: Vec<u64> = a.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn stable_json_is_deterministic_and_excludes_volatile() {
        let a = sample();
        let mut b = Registry::new();
        // Insert in a different order; BTreeMaps normalize it.
        b.events_mut().push("mem.chunk_acquired", &[("chunk", 7)]);
        b.observe("hbm.channel_requests", 5);
        b.observe("hbm.channel_requests", 4);
        b.set("mem.live_chunks", 3);
        b.incr("hbm.requests", 7);
        b.set_volatile("stage.profile.nanos", 999_999);
        assert_eq!(a.stable_json(), b.stable_json());
        assert!(!a.stable_json().contains("volatile"));
        assert!(a.full_json().contains("\"volatile\""));
        assert!(a.full_json().contains("\"stage.profile.nanos\": 123"));
    }

    #[test]
    fn json_shape_is_parsable_by_eye() {
        let r = sample();
        let s = r.stable_json();
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"counters\""));
        assert!(s.contains("\"hbm.requests\": 7"));
        assert!(s.contains("\"buckets\""));
        assert!(s.contains("\"kind\": \"mem.chunk_acquired\""));
        // Same registry, same bytes.
        assert_eq!(s, r.stable_json());
    }

    #[test]
    fn empty_registry_serializes_cleanly() {
        let s = Registry::new().stable_json();
        assert!(s.contains("\"counters\": {}"));
        assert!(s.contains("\"entries\": []"));
    }
}
