//! Histograms: fixed log2 buckets for values with large dynamic range,
//! and an exact `BTreeMap`-backed count histogram for small key spaces.

use std::collections::BTreeMap;

/// Number of buckets in a [`Log2Histogram`]: bucket 0 holds the value
/// `0`, bucket `b` (1..=64) holds values with `floor(log2(v)) == b - 1`,
/// i.e. `v` in `[2^(b-1), 2^b)`.
pub const LOG2_BUCKETS: usize = 65;

/// A histogram with fixed power-of-two buckets.
///
/// Recording is one `leading_zeros` and two adds; merging is element-wise
/// addition, so sharded accumulators combine deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The half-open value range `[lo, hi)` covered by `bucket`
    /// (`hi == u64::MAX` stands in for `2^64` in the last bucket).
    pub fn bucket_range(bucket: usize) -> (u64, u64) {
        match bucket {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), 1 << b),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// Non-empty buckets as `(bucket_index, count)` in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Element-wise addition of another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the inclusive
    /// upper edge of the bucket holding the `⌈q·count⌉`-th smallest
    /// observation. Log2 buckets make this at most 2x above the true
    /// quantile — the resolution tail-latency tables need. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match b {
                    64 => u64::MAX,
                    _ => Self::bucket_range(b).1 - 1,
                });
            }
        }
        None
    }
}

/// An exact histogram over `i64` keys, backed by a `BTreeMap` so
/// iteration (and therefore serialization) is always sorted.
///
/// This is the shape `sdam-trace`'s stride profiling needs — strides are
/// signed, the key space per variable is small, and the profiler wants
/// exact per-key counts, not bucketed ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountHistogram {
    counts: BTreeMap<i64, u64>,
    total: u64,
}

impl CountHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `key`.
    pub fn record(&mut self, key: i64) {
        self.record_n(key, 1);
    }

    /// Records `n` observations of `key`.
    pub fn record_n(&mut self, key: i64, n: u64) {
        if n > 0 {
            *self.counts.entry(key).or_insert(0) += n;
            self.total += n;
        }
    }

    /// Observations recorded for `key`.
    pub fn count(&self, key: i64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Total observations across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// `(key, count)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// The most frequent key, ties broken toward the smaller key;
    /// `None` when empty.
    pub fn mode(&self) -> Option<i64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, _)| k)
    }

    /// Fraction of observations on `key` in `[0, 1]`; 0.0 when empty.
    pub fn fraction(&self, key: i64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(key) as f64 / self.total as f64
        }
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &Self) {
        for (k, c) in other.iter() {
            self.record_n(k, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for b in 0..LOG2_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_range(b);
            assert_eq!(Log2Histogram::bucket_of(lo), b);
            assert_eq!(Log2Histogram::bucket_of(hi - 1), b);
        }
    }

    #[test]
    fn log2_record_and_merge() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(3), 1); // 5 in [4, 8)
        let mut other = Log2Histogram::new();
        other.record(5);
        h.merge(&other);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_count(3), 2);
        assert_eq!(h.nonzero_buckets().count(), 4);
        assert_eq!(h.mean(), Some(1011.0 / 5.0));
        assert_eq!(Log2Histogram::new().mean(), None);
    }

    #[test]
    fn log2_quantiles_bound_the_distribution() {
        assert_eq!(Log2Histogram::new().quantile(0.5), None);
        let mut h = Log2Histogram::new();
        // 99 observations of 10 ([8, 16)) and one of 1000 ([512, 1024)).
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.0), Some(15));
        assert_eq!(h.quantile(0.5), Some(15));
        assert_eq!(h.quantile(0.99), Some(15));
        assert_eq!(h.quantile(1.0), Some(1023));
        let mut zeros = Log2Histogram::new();
        zeros.record(0);
        assert_eq!(zeros.quantile(0.5), Some(0));
        let mut top = Log2Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn count_histogram_exact() {
        let mut h = CountHistogram::new();
        h.record(-8);
        h.record(64);
        h.record(64);
        h.record_n(0, 0); // no-op
        assert_eq!(h.total(), 3);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.count(64), 2);
        assert_eq!(h.mode(), Some(64));
        assert!((h.fraction(64) - 2.0 / 3.0).abs() < 1e-12);
        let keys: Vec<i64> = h.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![-8, 64]);
    }

    #[test]
    fn count_histogram_mode_tie_prefers_smaller_key() {
        let mut h = CountHistogram::new();
        h.record(3);
        h.record(-2);
        assert_eq!(h.mode(), Some(-2));
        assert_eq!(CountHistogram::new().mode(), None);
    }

    #[test]
    fn count_histogram_merge() {
        let mut a = CountHistogram::new();
        a.record(1);
        let mut b = CountHistogram::new();
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(2), 1);
    }
}
